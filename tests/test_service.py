"""OptimizerService: plan cache semantics, batching, metrics hooks."""

import pytest

from repro import (
    FAST_CONFIG,
    MultiBlockQuery,
    MultiObjectiveOptimizer,
    Objective,
    OptimizationRequest,
    OptimizerService,
    Preferences,
    WorkloadGenerator,
    tpch_query,
)
from repro.core.service import PlanCache

PREFS = Preferences.from_maps(
    (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
    weights={Objective.TOTAL_TIME: 1.0},
)


@pytest.fixture()
def small_service(small_schema):
    from tests.conftest import TINY_CONFIG

    return OptimizerService(small_schema, config=TINY_CONFIG)


@pytest.fixture()
def tpch_service(tpch):
    return OptimizerService(tpch, config=FAST_CONFIG)


def chain_request(chain, **overrides):
    fields = dict(query=chain, preferences=PREFS, algorithm="rta", alpha=1.5)
    fields.update(overrides)
    return OptimizationRequest(**fields)


class TestCache:
    def test_repeat_request_served_from_cache(self, small_service, chain2):
        request = chain_request(chain2)
        first = small_service.submit(request)
        second = small_service.submit(request)
        assert second is first  # memoized, not re-optimized
        assert small_service.metrics.cache_hits == 1
        assert small_service.metrics.cache_misses == 1
        assert small_service.metrics.requests == 2
        assert small_service.metrics.hit_rate == 0.5

    def test_equal_but_distinct_request_objects_hit(self, small_service,
                                                    chain2):
        small_service.submit(chain_request(chain2))
        small_service.submit(chain_request(chain2))
        assert small_service.metrics.cache_hits == 1

    def test_different_alpha_misses(self, small_service, chain2):
        small_service.submit(chain_request(chain2, alpha=1.5))
        small_service.submit(chain_request(chain2, alpha=2.0))
        assert small_service.metrics.cache_hits == 0
        assert small_service.metrics.cache_misses == 2

    def test_different_query_misses(self, small_service, chain2, chain3):
        small_service.submit(chain_request(chain2))
        small_service.submit(chain_request(chain3))
        assert small_service.metrics.cache_hits == 0

    def test_tags_do_not_split_cache_entries(self, small_service, chain2):
        small_service.submit(chain_request(chain2, tags=("tenant-a",)))
        small_service.submit(chain_request(chain2, tags=("tenant-b",)))
        assert small_service.metrics.cache_hits == 1

    def test_cache_disabled(self, small_schema, chain2):
        from tests.conftest import TINY_CONFIG

        service = OptimizerService(
            small_schema, config=TINY_CONFIG, cache_size=0
        )
        request = chain_request(chain2)
        service.submit(request)
        service.submit(request)
        assert service.metrics.cache_hits == 0
        assert len(service.cache) == 0

    def test_lru_eviction(self, small_schema, chain2, chain3):
        from tests.conftest import TINY_CONFIG

        service = OptimizerService(
            small_schema, config=TINY_CONFIG, cache_size=1
        )
        service.submit(chain_request(chain2))
        service.submit(chain_request(chain3))  # evicts chain2
        assert service.cache.evictions == 1
        service.submit(chain_request(chain2))  # miss again
        assert service.metrics.cache_hits == 0
        assert service.metrics.cache_misses == 3

    def test_timed_out_results_not_cached(self, tpch):
        service = OptimizerService(
            tpch, config=FAST_CONFIG.with_timeout(0.01)
        )
        from repro.cost.objectives import ALL_OBJECTIVES

        prefs = Preferences(
            objectives=ALL_OBJECTIVES, weights=(1.0,) * len(ALL_OBJECTIVES)
        )
        request = OptimizationRequest(
            query=tpch_query(8), preferences=prefs, algorithm="exa"
        )
        result = service.submit(request)
        assert result.timed_out
        assert len(service.cache) == 0
        service.submit(request)
        assert service.metrics.cache_hits == 0
        assert service.metrics.timeouts == 2

    def test_plan_cache_standalone(self):
        cache = PlanCache(max_size=2)
        cache.put("a", "ra")
        cache.put("b", "rb")
        assert cache.get("a") == "ra"  # refreshes a's recency
        cache.put("c", "rc")  # evicts b (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == "ra"
        assert cache.get("c") == "rc"
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


class TestResultIntegrity:
    def test_cached_result_name_not_mutated_by_wrappers(self, small_service,
                                                        chain2):
        """Regression: single-block results used to be renamed in place."""
        plain = small_service.submit(chain_request(chain2))
        assert plain.query_name == chain2.name
        wrapped = MultiBlockQuery(name="outer_wrapper", blocks=(chain2,))
        renamed = small_service.submit(chain_request(wrapped))
        assert renamed.query_name == "outer_wrapper"
        # The earlier (cached) result must be untouched by the rename.
        assert plain.query_name == chain2.name
        assert small_service.submit(chain_request(chain2)) is plain

    def test_results_are_frozen(self, small_service, chain2):
        import dataclasses

        result = small_service.submit(chain_request(chain2))
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.query_name = "hacked"

    def test_execute_returns_fresh_copy_per_call(self, small_schema, chain2):
        from tests.conftest import TINY_CONFIG

        optimizer = MultiObjectiveOptimizer(small_schema, config=TINY_CONFIG)
        a = optimizer.execute(chain_request(chain2))
        b = optimizer.execute(chain_request(chain2))
        assert a is not b
        assert a.plan_cost == b.plan_cost


class TestBatch:
    def test_empty_batch(self, small_service):
        assert small_service.optimize_many([]) == []

    def test_invalid_worker_count(self, small_service, chain2):
        with pytest.raises(ValueError):
            small_service.optimize_many([chain_request(chain2)],
                                        max_workers=0)

    def test_batch_matches_sequential_on_ten_query_workload(self, tpch):
        """Acceptance: concurrent batch == sequential optimize() calls."""
        generator = WorkloadGenerator(tpch, config=FAST_CONFIG, seed=7)
        cases = [
            generator.weighted_case(number, num_objectives=3, case_index=i)
            for i, number in enumerate((1, 6, 12, 14, 4, 1, 6, 12, 14, 4))
        ]
        requests = [case.to_request("rta", alpha=2.0) for case in cases]
        assert len(requests) == 10

        optimizer = MultiObjectiveOptimizer(tpch, config=FAST_CONFIG)
        sequential = [
            optimizer.optimize(
                case.query, case.preferences, algorithm="rta", alpha=2.0
            )
            for case in cases
        ]
        service = OptimizerService(tpch, config=FAST_CONFIG)
        batched = service.optimize_many(requests, max_workers=4)

        assert len(batched) == len(sequential) == 10
        for got, want, case in zip(batched, sequential, cases):
            assert got.query_name == want.query_name == case.query.name
            assert got.plan_cost == want.plan_cost
            assert got.weighted_cost == want.weighted_cost
            assert got.algorithm == "rta"

    def test_batch_results_keep_request_order(self, small_service, chain2,
                                              chain3):
        requests = [
            chain_request(chain3, alpha=1.2),
            chain_request(chain2, alpha=1.5),
            chain_request(chain3, alpha=2.0),
            chain_request(chain2, alpha=1.1),
        ]
        results = small_service.optimize_many(requests, max_workers=4)
        assert [r.query_name for r in results] == [
            "chain3", "chain2", "chain3", "chain2"
        ]
        assert [r.alpha for r in results] == [1.2, 1.5, 2.0, 1.1]

    def test_sequential_fallback_single_worker(self, small_service, chain2):
        results = small_service.optimize_many(
            [chain_request(chain2), chain_request(chain2)], max_workers=1
        )
        assert len(results) == 2
        assert small_service.metrics.cache_hits == 1


class TestLifecycle:
    def test_close_is_idempotent(self, small_schema, chain2):
        from tests.conftest import TINY_CONFIG

        service = OptimizerService(small_schema, config=TINY_CONFIG)
        service.submit(chain_request(chain2))
        assert not service.closed
        service.close()
        assert service.closed
        service.close()  # double close must not raise
        service.close()  # nor any later close
        assert service.closed

    def test_context_manager_then_explicit_close(self, small_schema,
                                                 chain2):
        from tests.conftest import TINY_CONFIG

        with OptimizerService(small_schema, config=TINY_CONFIG) as service:
            result = service.submit(chain_request(chain2))
            assert result.plan is not None
        assert service.closed
        # A serving layer owning the service may close it again on its
        # own teardown — still a no-op.
        service.close()
        assert service.closed

    def test_close_before_any_request(self, small_schema):
        from tests.conftest import TINY_CONFIG

        service = OptimizerService(small_schema, config=TINY_CONFIG)
        service.close()
        service.close()
        assert service.closed


class TestHooksAndMetrics:
    def test_hooks_receive_per_request_records(self, small_service, chain2):
        records = []
        small_service.add_hook(records.append)
        request = chain_request(chain2, tags=("tenant-a",))
        small_service.submit(request)
        small_service.submit(request)
        assert len(records) == 2
        assert [r.cache_hit for r in records] == [False, True]
        assert all(r.query_name == "chain2" for r in records)
        assert all(r.algorithm == "rta" for r in records)
        assert all(r.tags == ("tenant-a",) for r in records)
        assert records[0].fingerprint == records[1].fingerprint
        assert records[0].elapsed_ms > 0.0
        assert records[1].elapsed_ms == 0.0

    def test_by_algorithm_counts_executed_requests(self, small_service,
                                                   chain2):
        small_service.submit(chain_request(chain2, algorithm="rta"))
        small_service.submit(chain_request(chain2, algorithm="exa"))
        small_service.submit(chain_request(chain2, algorithm="rta"))  # hit
        assert small_service.metrics.by_algorithm == {"rta": 1, "exa": 1}

    def test_snapshot_is_serializable_copy(self, small_service, chain2):
        small_service.submit(chain_request(chain2))
        snapshot = small_service.metrics.snapshot()
        assert snapshot["requests"] == 1
        assert snapshot["cache_misses"] == 1
        snapshot["by_algorithm"]["rta"] = 999  # copy, not a live view
        assert small_service.metrics.by_algorithm["rta"] == 1
