"""Unit tests for predicates, query blocks and the TPC-H query set."""

import pytest

from repro import (
    FilterPredicate,
    JoinPredicate,
    MultiBlockQuery,
    Query,
    TableRef,
    single_block,
    tpch_query,
)
from repro.exceptions import QueryModelError
from repro.query.tpch_queries import (
    ALL_QUERY_NUMBERS,
    PAPER_QUERY_ORDER,
    all_tpch_queries,
    queries_in_paper_order,
)


class TestPredicates:
    def test_table_ref_requires_names(self):
        with pytest.raises(QueryModelError):
            TableRef("", "t")

    def test_filter_selectivity_range(self):
        with pytest.raises(QueryModelError):
            FilterPredicate("a", "c", 0.0)
        with pytest.raises(QueryModelError):
            FilterPredicate("a", "c", 1.5)
        assert FilterPredicate("a", "c", 1.0).selectivity == 1.0

    def test_join_predicate_sides(self):
        predicate = JoinPredicate("a", "x", "b", "y")
        assert predicate.side("a") == ("a", "x")
        assert predicate.other_side("a") == ("b", "y")
        assert predicate.aliases == frozenset({"a", "b"})
        with pytest.raises(QueryModelError):
            predicate.side("c")

    def test_join_predicate_rejects_self_reference(self):
        with pytest.raises(QueryModelError):
            JoinPredicate("a", "x", "a", "y")

    def test_join_predicate_selectivity_range(self):
        with pytest.raises(QueryModelError):
            JoinPredicate("a", "x", "b", "y", selectivity=0.0)


class TestQuery:
    def _query(self):
        return Query(
            name="q",
            table_refs=(TableRef("u", "users"), TableRef("o", "orders")),
            filters=(FilterPredicate("u", "country", 0.5),),
            joins=(JoinPredicate("u", "user_id", "o", "user_id"),),
        )

    def test_alias_resolution(self):
        query = self._query()
        assert query.table_name("u") == "users"
        with pytest.raises(QueryModelError):
            query.table_name("zzz")

    def test_rejects_duplicate_alias(self):
        with pytest.raises(QueryModelError):
            Query("q", (TableRef("a", "t"), TableRef("a", "t")))

    def test_rejects_dangling_filter(self):
        with pytest.raises(QueryModelError):
            Query(
                "q",
                (TableRef("a", "t"),),
                filters=(FilterPredicate("b", "c", 0.5),),
            )

    def test_rejects_dangling_join(self):
        with pytest.raises(QueryModelError):
            Query(
                "q",
                (TableRef("a", "t"),),
                joins=(JoinPredicate("a", "x", "b", "y"),),
            )

    def test_filters_on(self):
        query = self._query()
        assert len(query.filters_on("u")) == 1
        assert query.filters_on("o") == ()

    def test_joins_between(self):
        query = self._query()
        assert len(query.joins_between(frozenset({"u"}), frozenset({"o"}))) == 1
        assert query.joins_between(frozenset({"u"}), frozenset({"u"})) == ()

    def test_restricted_to(self):
        query = self._query()
        sub = query.restricted_to(frozenset({"u"}), "sub")
        assert sub.aliases == ("u",)
        assert sub.joins == ()
        assert len(sub.filters) == 1

    def test_restricted_to_unknown_alias(self):
        with pytest.raises(QueryModelError):
            self._query().restricted_to(frozenset({"zzz"}), "sub")

    def test_self_join_aliases(self):
        query = Query(
            "q",
            (TableRef("n1", "nation"), TableRef("n2", "nation")),
            joins=(JoinPredicate("n1", "n_regionkey", "n2", "n_regionkey"),),
        )
        assert query.table_name("n1") == query.table_name("n2") == "nation"


class TestMultiBlock:
    def test_single_block_wrapper(self):
        query = Query("q", (TableRef("a", "t"),))
        multi = single_block(query)
        assert multi.main_block is query
        assert not multi.has_subqueries
        assert multi.max_block_size == 1

    def test_requires_blocks(self):
        with pytest.raises(QueryModelError):
            MultiBlockQuery("q", ())


class TestTpchQueries:
    def test_all_22_build(self):
        queries = all_tpch_queries()
        assert set(queries) == set(ALL_QUERY_NUMBERS)

    def test_paper_order_is_permutation(self):
        assert sorted(PAPER_QUERY_ORDER) == list(ALL_QUERY_NUMBERS)

    def test_paper_order_ascending_block_size(self):
        sizes = [q.max_block_size for _, q in queries_in_paper_order()]
        assert sizes == sorted(sizes)

    def test_invalid_number_rejected(self):
        with pytest.raises(ValueError):
            tpch_query(23)

    def test_q8_joins_eight_tables(self):
        assert tpch_query(8).main_block.num_tables == 8

    def test_q7_self_join_aliases(self):
        q7 = tpch_query(7).main_block
        names = [ref.table_name for ref in q7.table_refs]
        assert names.count("nation") == 2

    def test_subquery_blocks(self):
        q2 = tpch_query(2)
        assert q2.has_subqueries
        assert q2.main_block.num_tables == 5
        assert q2.subquery_blocks[0].num_tables == 4

    def test_join_graphs_connected(self):
        from repro.query.join_graph import JoinGraph

        for number in ALL_QUERY_NUMBERS:
            for block in tpch_query(number).blocks:
                graph = JoinGraph(block)
                assert graph.is_connected(graph.full_mask), (
                    f"query {number} block {block.name} is disconnected"
                )

    def test_all_tables_exist_in_schema(self, tpch):
        for number in ALL_QUERY_NUMBERS:
            for block in tpch_query(number).blocks:
                for ref in block.table_refs:
                    assert tpch.has_table(ref.table_name)

    def test_filter_columns_exist(self, tpch):
        for number in ALL_QUERY_NUMBERS:
            for block in tpch_query(number).blocks:
                for flt in block.filters:
                    table = tpch.table(block.table_name(flt.alias))
                    assert table.has_column(flt.column), (
                        f"q{number}: {flt.alias}.{flt.column}"
                    )

    def test_join_columns_exist(self, tpch):
        for number in ALL_QUERY_NUMBERS:
            for block in tpch_query(number).blocks:
                for join in block.joins:
                    for alias in join.aliases:
                        _, column = join.side(alias)
                        table = tpch.table(block.table_name(alias))
                        assert table.has_column(column), (
                            f"q{number}: {alias}.{column}"
                        )

    def test_queries_cached(self):
        assert tpch_query(5) is tpch_query(5)
