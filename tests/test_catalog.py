"""Unit tests for the catalog substrate (columns, tables, indexes, TPC-H)."""

import math

import pytest

from repro import Column, DataType, Index, Schema, Table, build_schema
from repro.catalog.table import PAGE_SIZE, TUPLE_OVERHEAD
from repro.catalog.tpch import FIXED_SIZE_TABLES, SF1_ROW_COUNTS, tpch_schema
from repro.exceptions import CatalogError, UnknownColumnError, UnknownTableError


class TestColumn:
    def test_default_width_from_type(self):
        column = Column("a", DataType.INTEGER, n_distinct=10)
        assert column.byte_width == 4

    def test_explicit_width_kept(self):
        column = Column("a", DataType.VARCHAR, n_distinct=10, byte_width=99)
        assert column.byte_width == 99

    def test_rejects_zero_distinct(self):
        with pytest.raises(ValueError):
            Column("a", DataType.INTEGER, n_distinct=0)

    def test_rejects_bad_null_fraction(self):
        with pytest.raises(ValueError):
            Column("a", DataType.INTEGER, n_distinct=1, null_fraction=1.5)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Column("", DataType.INTEGER, n_distinct=1)

    def test_scaled_multiplies_distinct(self):
        column = Column("a", DataType.INTEGER, n_distinct=100)
        assert column.scaled(2.5).n_distinct == 250

    def test_scaled_keeps_minimum_one(self):
        column = Column("a", DataType.INTEGER, n_distinct=1)
        assert column.scaled(0.001).n_distinct == 1


class TestTable:
    def _table(self, rows=1000):
        return Table(
            "t",
            (
                Column("id", DataType.INTEGER, n_distinct=rows),
                Column("name", DataType.VARCHAR, n_distinct=rows),
            ),
            row_count=rows,
        )

    def test_tuple_width_includes_overhead(self):
        table = self._table()
        assert table.tuple_width == TUPLE_OVERHEAD + 4 + 24

    def test_pages_ceiling(self):
        table = self._table(rows=1000)
        per_page = PAGE_SIZE // table.tuple_width
        assert table.pages == math.ceil(1000 / per_page)

    def test_empty_table_has_one_page(self):
        table = Table(
            "t", (Column("id", DataType.INTEGER, n_distinct=1),), row_count=0
        )
        assert table.pages == 1

    def test_column_lookup(self):
        table = self._table()
        assert table.column("id").name == "id"
        with pytest.raises(UnknownColumnError):
            table.column("missing")

    def test_n_distinct_capped_by_rows(self):
        table = Table(
            "t",
            (Column("id", DataType.INTEGER, n_distinct=10_000),),
            row_count=50,
        )
        assert table.n_distinct("id") == 50

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table(
                "t",
                (
                    Column("id", DataType.INTEGER, n_distinct=1),
                    Column("id", DataType.INTEGER, n_distinct=1),
                ),
                row_count=1,
            )

    def test_scaled(self):
        table = self._table(rows=1000)
        scaled = table.scaled(3.0)
        assert scaled.row_count == 3000
        assert scaled.column("id").n_distinct == 3000

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(CatalogError):
            self._table().scaled(0)


class TestIndex:
    def test_height_grows_with_rows(self):
        small = Index("i1", "t", ("c",), row_count=100)
        large = Index("i2", "t", ("c",), row_count=100_000_000)
        assert small.height == 1
        assert large.height > small.height

    def test_leaf_pages_positive(self):
        index = Index("i", "t", ("c",), row_count=0)
        assert index.leaf_pages == 1

    def test_covers_leading_column_only(self):
        index = Index("i", "t", ("a", "b"), row_count=10)
        assert index.covers("a")
        assert not index.covers("b")

    def test_requires_columns(self):
        with pytest.raises(CatalogError):
            Index("i", "t", (), row_count=10)


class TestSchema:
    def test_lookup_and_errors(self, small_schema):
        assert small_schema.table("users").name == "users"
        with pytest.raises(UnknownTableError):
            small_schema.table("nope")

    def test_duplicate_table_rejected(self):
        schema = Schema()
        table = Table(
            "t", (Column("id", DataType.INTEGER, n_distinct=1),), row_count=1
        )
        schema.add_table(table)
        with pytest.raises(CatalogError):
            schema.add_table(table)

    def test_index_requires_table_and_column(self):
        schema = Schema()
        schema.add_table(
            Table(
                "t", (Column("id", DataType.INTEGER, n_distinct=1),),
                row_count=1,
            )
        )
        with pytest.raises(UnknownTableError):
            schema.add_index(Index("i", "missing", ("id",), 1))
        with pytest.raises(CatalogError):
            schema.add_index(Index("i", "t", ("missing",), 1))

    def test_index_on_column(self, small_schema):
        index = small_schema.index_on_column("orders", "user_id")
        assert index is not None and index.name == "orders_user_idx"
        assert small_schema.index_on_column("orders", "status") is None

    def test_build_schema_helper(self):
        schema = build_schema(
            "s",
            [Table("t", (Column("id", DataType.INTEGER, n_distinct=5),),
                   row_count=5)],
            [Index("i", "t", ("id",), 5)],
        )
        assert schema.table_names == ("t",)
        assert schema.indexes_on("t")[0].name == "i"

    def test_scaled_schema(self, small_schema):
        scaled = small_schema.scaled(2.0)
        assert scaled.table("items").row_count == 8000
        assert scaled.indexes_on("items")[0].row_count == 8000


class TestTpch:
    def test_all_eight_tables(self):
        schema = tpch_schema()
        assert set(schema.table_names) == set(SF1_ROW_COUNTS)

    def test_sf1_cardinalities(self):
        schema = tpch_schema(1.0)
        for name, rows in SF1_ROW_COUNTS.items():
            assert schema.table(name).row_count == rows

    def test_scale_factor_scales_large_tables_only(self):
        schema = tpch_schema(0.1)
        assert schema.table("lineitem").row_count == int(6_001_215 * 0.1)
        for fixed in FIXED_SIZE_TABLES:
            assert schema.table(fixed).row_count == SF1_ROW_COUNTS[fixed]

    def test_foreign_key_indexes_exist(self):
        schema = tpch_schema()
        assert schema.index_on_column("lineitem", "l_orderkey") is not None
        assert schema.index_on_column("orders", "o_custkey") is not None
        assert schema.index_on_column("partsupp", "ps_partkey") is not None

    def test_primary_keys_unique(self):
        schema = tpch_schema()
        pk = schema.index_on_column("customer", "c_custkey")
        assert pk is not None and pk.unique

    def test_rejects_bad_scale_factor(self):
        with pytest.raises(ValueError):
            tpch_schema(0)

    def test_lineitem_wider_than_nation(self):
        schema = tpch_schema()
        assert (
            schema.table("lineitem").tuple_width
            > schema.table("nation").tuple_width - 40
        )
        assert schema.table("lineitem").pages > schema.table("nation").pages
