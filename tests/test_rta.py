"""RTA guarantees: approximate Pareto sets and near-optimal plans.

Theorem 3: the RTA generates an alpha_U-approximate Pareto set.
Corollary 1: the selected plan is an alpha_U-approximate solution.
Both are verified against brute-force ground truth on small queries,
over randomized weights — plus the pruning-variant ablation showing why
the aggressive variant loses the guarantee.
"""

import random

import pytest

from repro import Objective, Preferences
from repro.core.exa import exact_moqo
from repro.core.pareto import coverage_factor
from repro.core.rta import internal_precision, rta
from repro.cost.model import CostModel
from repro.cost.vector import project, weighted_cost
from repro.exceptions import InvalidPrecisionError, OptimizerError

from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema
from tests.helpers import enumerate_all_plans

OBJECTIVES = (
    Objective.TOTAL_TIME,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)

ALPHAS = (1.05, 1.15, 1.5, 2.0, 4.0)


@pytest.fixture(scope="module")
def setup():
    schema = make_small_schema()
    model = CostModel(schema)
    query = make_chain_query(3)
    all_plans = enumerate_all_plans(query, model, TINY_CONFIG)
    return schema, model, query, all_plans


class TestInternalPrecision:
    def test_nth_root(self):
        assert internal_precision(2.0, 1) == pytest.approx(2.0)
        assert internal_precision(8.0, 3) == pytest.approx(2.0)

    def test_rejects_alpha_below_one(self):
        with pytest.raises(InvalidPrecisionError):
            internal_precision(0.99, 3)

    def test_rejects_bad_table_count(self):
        with pytest.raises(OptimizerError):
            internal_precision(2.0, 0)


@pytest.mark.parametrize("alpha", ALPHAS)
def test_rta_frontier_is_alpha_approximate_pareto_set(setup, alpha):
    _, model, query, all_plans = setup
    prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1.0, 1.0))
    result = rta(query, model, prefs, alpha, TINY_CONFIG)
    all_costs = [project(p.cost, prefs.indices) for p in all_plans]
    observed = coverage_factor(result.frontier_costs, all_costs)
    assert observed <= alpha * (1 + 1e-9)


@pytest.mark.parametrize("alpha", ALPHAS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_rta_plan_within_alpha_of_optimum(setup, alpha, seed):
    _, model, query, all_plans = setup
    rng = random.Random(seed)
    weights = tuple(rng.uniform(0.0, 1.0) for _ in OBJECTIVES)
    prefs = Preferences(objectives=OBJECTIVES, weights=weights)
    result = rta(query, model, prefs, alpha, TINY_CONFIG)
    optimum = min(
        weighted_cost(project(p.cost, prefs.indices), weights)
        for p in all_plans
    )
    if optimum > 0:
        assert result.weighted_cost <= optimum * alpha * (1 + 1e-9)


def test_rta_alpha_one_matches_exa(setup):
    _, model, query, _ = setup
    prefs = Preferences(objectives=OBJECTIVES, weights=(0.7, 0.2, 0.9))
    exact = exact_moqo(query, model, prefs, TINY_CONFIG)
    approximate = rta(query, model, prefs, 1.0, TINY_CONFIG)
    assert sorted(approximate.frontier_costs) == sorted(exact.frontier_costs)
    assert approximate.weighted_cost == pytest.approx(exact.weighted_cost)


def test_rta_stores_fewer_plans_for_coarser_alpha(setup):
    _, model, query, _ = setup
    prefs = Preferences(objectives=OBJECTIVES, weights=(1, 1, 1))
    sizes = [
        len(rta(query, model, prefs, alpha, TINY_CONFIG).frontier)
        for alpha in (1.0, 1.5, 4.0)
    ]
    assert sizes[0] >= sizes[1] >= sizes[2]
    assert sizes[2] >= 1


def test_rta_faster_than_exa_on_many_objectives(tpch_optimizer):
    """The headline claim, at reduced scale: RTA beats EXA on Q3/9 obj."""
    from repro import tpch_query
    from repro.cost.objectives import ALL_OBJECTIVES

    prefs = Preferences(
        objectives=ALL_OBJECTIVES, weights=tuple([1.0] * 9)
    )
    query = tpch_query(3)
    exa_result = tpch_optimizer.optimize(query, prefs, algorithm="exa")
    rta_result = tpch_optimizer.optimize(
        query, prefs, algorithm="rta", alpha=2.0
    )
    assert rta_result.plans_considered < exa_result.plans_considered
    assert len(rta_result.frontier) < len(exa_result.frontier)
    # Near-optimality of the returned plan vs the exact optimum.
    assert rta_result.weighted_cost <= exa_result.weighted_cost * 2.0


def test_rta_rejects_bounds(setup):
    _, model, query, _ = setup
    prefs = Preferences(
        objectives=OBJECTIVES, weights=(1, 1, 1), bounds=(1e9, 1e9, 0.5)
    )
    with pytest.raises(OptimizerError):
        rta(query, model, prefs, 1.5, TINY_CONFIG)


def test_rta_rejects_bad_alpha(setup):
    _, model, query, _ = setup
    prefs = Preferences(objectives=OBJECTIVES, weights=(1, 1, 1))
    with pytest.raises(InvalidPrecisionError):
        rta(query, model, prefs, 0.5, TINY_CONFIG)


class TestPruningVariantAblation:
    """Section 6.2's warning, demonstrated on plan-set level.

    The aggressive variant discards approximately dominated stored
    plans; repeated insertions can then drift arbitrarily far from the
    frontier. We verify the *mechanism* (drift beyond alpha) on a
    crafted sequence.
    """

    def test_aggressive_set_drifts_beyond_alpha(self):
        from repro.core.pruning import AggressivePlanSet
        from repro.cost.vector import approx_dominates

        alpha = 1.5
        plan_set = AggressivePlanSet(alpha=alpha)
        # Chain of vectors, each approx-dominating (and evicting) its
        # predecessor without being covered by it; drift compounds along
        # the second dimension. Step factors: dim 0 shrinks by slightly
        # more than alpha (so the new vector is not covered), dim 1
        # grows by slightly less than alpha (so the old one is evicted).
        chain = [(100.0, 1.0)]
        while len(chain) < 6:
            previous = chain[-1]
            chain.append(
                (previous[0] / (alpha * 1.01), previous[1] * alpha * 0.99)
            )
        for index, vector in enumerate(chain):
            plan_set.insert(vector, index)
        # The surviving set no longer alpha-covers the first vector.
        stored = plan_set.costs
        assert not any(
            approx_dominates(c, chain[0], alpha) for c in stored
        )
