"""Tests for OptimizationResult accessors."""

import math

import pytest

from repro import INFINITY, Objective, Preferences
from repro.core.result import OptimizationResult

OBJS = (Objective.TOTAL_TIME, Objective.TUPLE_LOSS)


def make_result(plan_cost=(10.0, 0.2), bounds=(), timed_out=False):
    prefs = Preferences(
        objectives=OBJS, weights=(1.0, 2.0),
        bounds=bounds or (INFINITY, INFINITY),
    )
    return OptimizationResult(
        algorithm="rta",
        query_name="q",
        preferences=prefs,
        plan="fake-plan" if plan_cost else None,
        plan_cost=plan_cost,
        frontier=(((10.0, 0.2), "fake-plan"),),
        optimization_time_ms=12.5,
        memory_kb=77.0,
        pareto_last_complete=1,
        plans_considered=42,
        timed_out=timed_out,
        alpha=1.5,
    )


def test_weighted_cost():
    assert make_result().weighted_cost == pytest.approx(10.4)


def test_weighted_cost_without_plan():
    assert make_result(plan_cost=None).weighted_cost == math.inf


def test_respects_bounds():
    assert make_result(bounds=(20.0, 1.0)).respects_bounds
    assert not make_result(bounds=(5.0, 1.0)).respects_bounds
    assert not make_result(plan_cost=None).respects_bounds


def test_cost_of():
    result = make_result()
    assert result.cost_of(Objective.TUPLE_LOSS) == 0.2
    with pytest.raises(ValueError):
        result.cost_of(Objective.ENERGY)  # not a selected objective


def test_frontier_costs_and_objectives():
    result = make_result()
    assert result.frontier_costs == [(10.0, 0.2)]
    assert result.objectives == OBJS


def test_summary_mentions_status():
    assert "[ok]" in make_result().summary()
    assert "[TIMEOUT]" in make_result(timed_out=True).summary()
