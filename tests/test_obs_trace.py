"""Tracer mechanics: nesting, propagation, pickling, export, summary.

The process-backend scenario spins up one real (spawn) worker — kept to
a single test so the module stays inside the tier-1 budget; the rest of
the module exercises the tracer in-process.
"""

from __future__ import annotations

import json
import pickle
import threading
import time

import pytest

from repro.core.preferences import Preferences
from repro.core.request import OptimizationRequest
from repro.core.service import OptimizerService
from repro.cost.objectives import Objective
from repro.obs.trace import (
    PHASE_ORDER,
    Span,
    TraceContext,
    Tracer,
    active_tracer,
    current_context,
    format_trace_summaries,
    read_spans_jsonl,
    spans_to_chrome_trace,
    spans_to_jsonl,
    summarize_spans,
    write_spans_jsonl,
)
from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema


class TestTracerBasics:
    def test_inactive_by_default(self):
        assert active_tracer() is None
        assert current_context() is None

    def test_activate_scopes_the_tracer(self):
        tracer = Tracer()
        with tracer.activate():
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_span_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("outer", "request") as outer:
                with tracer.span("inner", "cache") as inner:
                    assert inner.span.parent_id == outer.span.span_id
                    assert inner.span.trace_id == outer.span.trace_id
        spans = tracer.drain()
        assert {span.name for span in spans} == {"outer", "inner"}
        assert all(span.end_s >= span.start_s for span in spans)

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.activate():
            root = tracer.begin("root", "request")
            with tracer.span("a", "cache"):
                pass
            with tracer.span("b", "cache"):
                pass
            root.finish()
        spans = {span.name: span for span in tracer.drain()}
        assert spans["a"].parent_id == spans["root"].span_id
        assert spans["b"].parent_id == spans["root"].span_id

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        with tracer.activate():
            handle = tracer.begin("once", "request")
            handle.finish()
            end = handle.span.end_s
            handle.finish()
            assert handle.span.end_s == end
        assert len(tracer.drain()) == 1

    def test_spans_without_activation_are_not_recorded(self):
        tracer = Tracer()
        # begin/finish outside activate() still works (the handle owns
        # its tracer); this guards the contextvar helpers specifically.
        assert active_tracer() is None
        with tracer.activate():
            pass
        assert tracer.drain() == []

    def test_adopt_parents_under_foreign_context(self):
        tracer = Tracer()
        foreign = TraceContext(trace_id="t" * 16, span_id="s" * 16)
        with tracer.activate(), tracer.adopt(foreign):
            with tracer.span("child", "cache") as child:
                assert child.span.trace_id == foreign.trace_id
                assert child.span.parent_id == foreign.span_id

    def test_adopt_none_is_a_no_op(self):
        tracer = Tracer()
        with tracer.activate(), tracer.adopt(None):
            with tracer.span("orphan", "cache") as handle:
                assert handle.span.parent_id is None


class TestThreadPropagation:
    def test_context_hops_threads_via_adopt(self):
        """The run_in_executor pattern: a worker thread re-activates the
        tracer and adopts the caller's context; its spans parent under
        the caller's span and collect into the same tracer."""
        tracer = Tracer()
        with tracer.activate():
            root = tracer.begin("request", "request")
            context = current_context()

            def worker():
                with tracer.activate(), tracer.adopt(context):
                    with tracer.span("work", "algorithm"):
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            root.finish()
        spans = {span.name: span for span in tracer.drain()}
        assert spans["work"].parent_id == spans["request"].span_id
        assert spans["work"].trace_id == spans["request"].trace_id

    def test_concurrent_spans_do_not_corrupt_each_other(self):
        tracer = Tracer()
        errors: list[str] = []

        def worker(index: int):
            with tracer.activate():
                with tracer.span(f"outer{index}", "request") as outer:
                    with tracer.span(f"inner{index}", "cache") as inner:
                        if inner.span.parent_id != outer.span.span_id:
                            errors.append(f"thread {index} mis-parented")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(tracer.drain()) == 16


class TestPicklingAndExport:
    def test_trace_context_pickle_round_trip(self):
        context = TraceContext(trace_id="a" * 16, span_id="b" * 16)
        assert pickle.loads(pickle.dumps(context)) == context

    def test_span_parent_ids_survive_pickling(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("outer", "request"):
                with tracer.span("inner", "cache"):
                    pass
        spans = tracer.drain()
        restored = pickle.loads(pickle.dumps(spans))
        assert [span.to_dict() for span in restored] == [
            span.to_dict() for span in spans
        ]

    def test_ingest_merges_foreign_spans(self):
        parent = Tracer()
        with parent.activate():
            root = parent.begin("request", "request")
            context = root.context
            root.finish()
        worker = Tracer()
        with worker.activate(), worker.adopt(context):
            with worker.span("remote", "algorithm"):
                pass
        shipped = pickle.loads(pickle.dumps(worker.drain()))
        parent.ingest(shipped)
        spans = {span.name: span for span in parent.drain()}
        assert spans["remote"].parent_id == spans["request"].span_id

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("a", "request", query="q1"):
                pass
        spans = tracer.drain()
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(path, spans)
        write_spans_jsonl(path, spans)  # appends
        loaded = read_spans_jsonl(path)
        assert len(loaded) == 2
        assert loaded[0].to_dict() == spans[0].to_dict()

    def test_chrome_trace_shape(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("outer", "request"):
                with tracer.span("inner", "cache"):
                    pass
        document = spans_to_chrome_trace(tracer.drain())
        events = document["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        meta = [event for event in events if event["ph"] == "M"]
        assert len(complete) == 2
        assert meta, "expected process/thread name metadata events"
        for event in complete:
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        # Valid JSON end to end.
        json.dumps(document)


class TestSummaries:
    def build_trace(self) -> list[Span]:
        tracer = Tracer()
        with tracer.activate():
            root = tracer.begin("request", "request", query="q", code="ok")
            with tracer.span("parse", "parse"):
                time.sleep(0.001)
            with tracer.span("cache.lookup", "cache"):
                pass
            algorithm = tracer.begin("algorithm.rta", "algorithm")
            time.sleep(0.002)
            algorithm.set(kernel=0.5, prune=0.25, materialize=0.25)
            algorithm.finish()
            root.finish()
        return tracer.drain()

    def test_phases_reconstruct_end_to_end(self):
        summaries = summarize_spans(self.build_trace())
        assert len(summaries) == 1
        summary = summaries[0]
        assert set(summary.phases) == set(PHASE_ORDER)
        assert summary.phases["parse"] > 0
        assert summary.phases["kernel"] == pytest.approx(0.5)
        assert summary.phases["prune"] == pytest.approx(0.25)
        assert summary.phases["materialize"] == pytest.approx(0.25)
        assert summary.phases["enumerate"] > 0
        # Named phases + other == e2e, so the sum never exceeds it.
        reconstructed = summary.phase_sum_ms + summary.phases["other"]
        assert reconstructed == pytest.approx(summary.total_ms, rel=0.02)

    def test_nested_counted_spans_use_self_time(self):
        """A dispatch span wrapping the worker's algorithm span must
        contribute only its self time (the IPC overhead), never the
        enclosed algorithm time again."""
        tracer = Tracer()
        with tracer.activate():
            root = tracer.begin("request", "request")
            dispatch = tracer.begin("pool.dispatch", "dispatch")
            algorithm = tracer.begin("algorithm.rta", "algorithm")
            time.sleep(0.002)
            algorithm.finish()
            dispatch.finish()
            root.finish()
        summary = summarize_spans(tracer.drain())[0]
        algorithm_ms = summary.phases["enumerate"]
        dispatch_ms = summary.phases["dispatch"]
        assert algorithm_ms >= 2.0
        assert dispatch_ms < algorithm_ms  # self time only
        assert summary.phase_sum_ms <= summary.total_ms * 1.01

    def test_multiple_traces_sorted_by_start(self):
        spans = self.build_trace() + self.build_trace()
        summaries = summarize_spans(spans)
        assert len(summaries) == 2
        assert summaries[0].start_s <= summaries[1].start_s

    def test_format_includes_phases_and_sum(self):
        text = format_trace_summaries(summarize_spans(self.build_trace()))
        for phase in PHASE_ORDER:
            assert phase in text
        assert "phase sum" in text
        assert format_trace_summaries([]) == "no request traces found"


PREFS = Preferences.from_maps(
    (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
    weights={Objective.TOTAL_TIME: 1.0, Objective.TUPLE_LOSS: 1.0},
)


@pytest.mark.parallel
class TestProcessBackendTracing:
    def test_worker_spans_merge_into_parent_trace(self, parallel_workers):
        """Spans created inside a worker process ship back pickled and
        parent correctly under the caller's request span."""
        with OptimizerService(
            make_small_schema(),
            config=TINY_CONFIG,
            backend="processes",
            workers=1,
        ) as service:
            service.worker_pool().warm_up()
            request = OptimizationRequest(
                query=make_chain_query(3),
                preferences=PREFS,
                algorithm="rta",
                alpha=1.5,
            )
            tracer = Tracer()
            with tracer.activate():
                root = tracer.begin("request", "request")
                service.submit(request)
                root.finish()
            spans = tracer.drain()

        by_id = {span.span_id: span for span in spans}
        processes = {span.process for span in spans}
        assert len(processes) >= 2, "expected spans from a worker process"
        # Every span's parent resolves within the merged set.
        orphans = [
            span.name
            for span in spans
            if span.parent_id is not None and span.parent_id not in by_id
        ]
        assert orphans == []
        names = {span.name for span in spans}
        assert "pool.dispatch" in names
        assert any(name.startswith("algorithm.") for name in names)
        # One coherent trace whose phase sum lands within 10% of e2e.
        summaries = summarize_spans(spans)
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary.phases["dispatch"] > 0
        assert (
            summary.phase_sum_ms + summary.phases["other"]
            == pytest.approx(summary.total_ms, rel=0.02)
        )


def test_jsonl_text_round_trip():
    tracer = Tracer()
    with tracer.activate():
        with tracer.span("a", "request"):
            pass
    spans = tracer.drain()
    lines = spans_to_jsonl(spans).splitlines()
    assert len(lines) == 1
    assert Span.from_dict(json.loads(lines[0])).to_dict() == spans[0].to_dict()
