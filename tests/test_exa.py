"""EXA correctness: exact Pareto sets and optimal plans vs brute force."""

import random

import pytest

from repro import Objective, Preferences
from repro.core.exa import exact_moqo
from repro.core.select_best import select_best
from repro.cost.vector import pareto_filter, project, weighted_cost
from repro.core.pareto import is_pareto_set

from tests.conftest import TINY_CONFIG, make_chain_query
from tests.helpers import enumerate_all_plans

OBJECTIVES_3 = (
    Objective.TOTAL_TIME,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)


@pytest.fixture(scope="module")
def ground_truth(request):
    """All plans for chain2/chain3 under the tiny config."""
    from tests.conftest import make_small_schema
    from repro.cost.model import CostModel

    schema = make_small_schema()
    model = CostModel(schema)
    return {
        n: (make_chain_query(n),
            enumerate_all_plans(make_chain_query(n), model, TINY_CONFIG),
            model)
        for n in (2, 3)
    }


@pytest.mark.parametrize("num_tables", [2, 3])
def test_exa_frontier_is_exact_pareto_set(ground_truth, num_tables):
    query, all_plans, model = ground_truth[num_tables]
    prefs = Preferences(objectives=OBJECTIVES_3, weights=(1.0, 1.0, 1.0))
    result = exact_moqo(query, model, prefs, TINY_CONFIG)

    all_costs = [project(p.cost, prefs.indices) for p in all_plans]
    frontier = pareto_filter(all_costs)
    exa_costs = sorted(set(result.frontier_costs))
    assert exa_costs == sorted(frontier)
    assert is_pareto_set(result.frontier_costs, all_costs)


@pytest.mark.parametrize("num_tables", [2, 3])
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_exa_plan_is_weighted_optimal(ground_truth, num_tables, seed):
    query, all_plans, model = ground_truth[num_tables]
    rng = random.Random(seed)
    weights = tuple(rng.uniform(0.0, 1.0) for _ in OBJECTIVES_3)
    prefs = Preferences(objectives=OBJECTIVES_3, weights=weights)
    result = exact_moqo(query, model, prefs, TINY_CONFIG)

    brute_optimum = min(
        weighted_cost(project(p.cost, prefs.indices), weights)
        for p in all_plans
    )
    assert result.weighted_cost == pytest.approx(brute_optimum, rel=1e-9)


@pytest.mark.parametrize("seed", [10, 11, 12])
def test_exa_respects_bounds_when_feasible(ground_truth, seed):
    query, all_plans, model = ground_truth[3]
    rng = random.Random(seed)
    prefs_unbounded = Preferences(
        objectives=OBJECTIVES_3,
        weights=tuple(rng.uniform(0.1, 1.0) for _ in OBJECTIVES_3),
    )
    # Derive a feasible bound from a random plan's cost.
    anchor = project(
        rng.choice(all_plans).cost, prefs_unbounded.indices
    )
    bounds = tuple(c * 1.5 + 1e-9 for c in anchor)
    prefs = Preferences(
        objectives=OBJECTIVES_3,
        weights=prefs_unbounded.weights,
        bounds=bounds,
    )
    result = exact_moqo(query, model, prefs, TINY_CONFIG)
    assert result.respects_bounds

    feasible = [
        weighted_cost(project(p.cost, prefs.indices), prefs.weights)
        for p in all_plans
        if prefs.respects(project(p.cost, prefs.indices))
    ]
    assert result.weighted_cost == pytest.approx(min(feasible), rel=1e-9)


def test_exa_select_best_consistency(ground_truth):
    query, all_plans, model = ground_truth[3]
    prefs = Preferences(objectives=OBJECTIVES_3, weights=(1.0, 0.0, 5.0))
    result = exact_moqo(query, model, prefs, TINY_CONFIG)
    best = select_best(result.frontier, prefs)
    assert best[0] == result.plan_cost


def test_exa_counters_populated(ground_truth):
    query, all_plans, model = ground_truth[3]
    prefs = Preferences(objectives=OBJECTIVES_3, weights=(1, 1, 1))
    result = exact_moqo(query, model, prefs, TINY_CONFIG)
    assert result.plans_considered > len(result.frontier)
    assert result.pareto_last_complete == len(result.frontier)
    assert result.memory_kb > 0
    assert not result.timed_out
    assert result.algorithm == "exa"


def test_exa_single_table_query(ground_truth):
    _, _, model = ground_truth[2]
    query = make_chain_query(1)
    prefs = Preferences(
        objectives=(Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
        weights=(1.0, 1.0),
    )
    result = exact_moqo(query, model, prefs, TINY_CONFIG)
    assert result.plan is not None
    # seq scan and one sampling rate -> a 2-point frontier.
    assert len(result.frontier) == 2
