"""Workload generator: determinism and the paper's bound rules."""

import pytest

from repro import INFINITY, Objective, WorkloadGenerator
from repro.config import OptimizerConfig
from repro.cost.objectives import ALL_OBJECTIVES
from repro.exceptions import OptimizerError

CONFIG = OptimizerConfig(dop_values=(1, 2), sampling_rates=(0.01, 0.05))


@pytest.fixture(scope="module")
def generator():
    from repro import tpch_schema

    return WorkloadGenerator(tpch_schema(), config=CONFIG, seed=123)


class TestWeightedCases:
    def test_objective_count(self, generator):
        case = generator.weighted_case(3, num_objectives=6)
        assert case.preferences.num_objectives == 6
        assert not case.is_bounded

    def test_weights_in_unit_interval(self, generator):
        case = generator.weighted_case(3, num_objectives=9)
        assert all(0.0 <= w <= 1.0 for w in case.preferences.weights)

    def test_objectives_are_distinct_and_sorted(self, generator):
        case = generator.weighted_case(5, num_objectives=9)
        indices = [o.index for o in case.preferences.objectives]
        assert indices == sorted(set(indices))

    def test_deterministic_with_seed(self):
        from repro import tpch_schema

        schema = tpch_schema()
        g1 = WorkloadGenerator(schema, config=CONFIG, seed=99)
        g2 = WorkloadGenerator(schema, config=CONFIG, seed=99)
        c1 = g1.weighted_case(7, 3)
        c2 = g2.weighted_case(7, 3)
        assert c1.preferences == c2.preferences

    def test_different_seeds_differ(self):
        from repro import tpch_schema

        schema = tpch_schema()
        g1 = WorkloadGenerator(schema, config=CONFIG, seed=1)
        g2 = WorkloadGenerator(schema, config=CONFIG, seed=2)
        assert (
            g1.weighted_case(7, 9).preferences
            != g2.weighted_case(7, 9).preferences
        )

    def test_batch_count(self, generator):
        cases = generator.weighted_cases(6, num_objectives=3, count=5)
        assert len(cases) == 5
        assert [c.case_index for c in cases] == list(range(5))

    def test_invalid_objective_count(self, generator):
        with pytest.raises(OptimizerError):
            generator.weighted_case(1, num_objectives=10)


class TestBoundedCases:
    def test_bound_count(self, generator):
        case = generator.bounded_case(3, num_bounds=3)
        assert case.preferences.num_objectives == 9
        assert len(case.preferences.bounded_objectives) == 3
        assert case.is_bounded

    def test_all_nine_bounded(self, generator):
        case = generator.bounded_case(1, num_bounds=9)
        assert all(b != INFINITY for b in case.preferences.bounds)

    def test_bounds_cannot_exceed_objectives(self, generator):
        with pytest.raises(OptimizerError):
            generator.bounded_case(1, num_bounds=4, num_objectives=3)

    def test_bounded_domain_rule(self, generator):
        # Tuple-loss bounds are drawn from [0, 1] (the domain), not from
        # the minimum-based rule.
        for _ in range(20):
            case = generator.bounded_case(1, num_bounds=9)
            position = case.preferences.objectives.index(
                Objective.TUPLE_LOSS
            )
            assert 0.0 <= case.preferences.bounds[position] <= 1.0

    def test_unbounded_domain_rule(self, generator):
        # Bounds on unbounded objectives lie in [min, 2 * min].
        minimum = generator.minimum_cost(1, Objective.TOTAL_TIME)
        for _ in range(10):
            case = generator.bounded_case(1, num_bounds=9)
            position = case.preferences.objectives.index(
                Objective.TOTAL_TIME
            )
            bound = case.preferences.bounds[position]
            assert minimum <= bound <= 2.0 * minimum * (1 + 1e-9)


class TestFamilyDispatch:
    def test_family_inherits_generator_seed(self, generator):
        family = generator.family("tpch-chain", extra_joins=2)
        assert family.seed == 123

    def test_tpch_family_defaults_to_generator_schema(self, generator):
        family = generator.family("tpch-chain", extra_joins=2)
        assert family.schema is generator.schema

    def test_job_family_builds_own_schema(self, generator):
        family = generator.family("job-chain", joins=2)
        assert family.schema is not generator.schema
        assert family.schema.name.startswith("imdb")

    def test_family_requests_deterministic_across_generators(self):
        from repro import tpch_schema

        schema = tpch_schema(0.0002)
        g1 = WorkloadGenerator(schema, config=CONFIG, seed=99)
        g2 = WorkloadGenerator(schema, config=CONFIG, seed=99)
        first = g1.family_requests("tpch-chain", 3, extra_joins=2)
        second = g2.family_requests("tpch-chain", 3, extra_joins=2)
        assert [r.fingerprint() for r in first] == [
            r.fingerprint() for r in second
        ]

    def test_family_draws_leave_case_stream_untouched(self, generator):
        # Family draws use per-index streams, so interleaving them must
        # not perturb the TPC-H case sequence.
        g_ref = WorkloadGenerator(generator.schema, config=CONFIG, seed=123)
        expected = g_ref.weighted_case(3, num_objectives=4).preferences
        g_mixed = WorkloadGenerator(generator.schema, config=CONFIG, seed=123)
        g_mixed.family_requests("tpch-chain", 2, extra_joins=2)
        assert g_mixed.weighted_case(3, num_objectives=4).preferences \
            == expected

    def test_unknown_family_rejected(self, generator):
        with pytest.raises(OptimizerError):
            generator.family("no-such-family")


class TestMinimumCost:
    def test_cached(self, generator):
        first = generator.minimum_cost(3, Objective.TOTAL_TIME)
        second = generator.minimum_cost(3, Objective.TOTAL_TIME)
        assert first == second

    def test_positive_for_time(self, generator):
        assert generator.minimum_cost(3, Objective.TOTAL_TIME) > 0

    def test_multi_block_combines(self, generator):
        # Q4 has two blocks; the minimal total time must cover both.
        q4_min = generator.minimum_cost(4, Objective.TOTAL_TIME)
        assert q4_min > 0
