"""Shard-merge correctness: sharded frontiers equal unsharded ones.

The intra-query sharding of :mod:`repro.parallel.sharding` promises a
*bit-for-bit* reproduction of the single-process EXA/RTA result — the
property-style tests here check exact (no-tolerance) equality of
frontier cost vectors, frontier order, and the selected plan across
random join graphs, shard counts, precisions and strict mode.
"""

from __future__ import annotations

import pytest

from repro.config import OptimizerConfig
from repro.core.exa import exact_moqo
from repro.core.preferences import Preferences
from repro.core.rta import rta
from repro.cost.model import CostModel
from repro.cost.objectives import ALL_OBJECTIVES
from repro.exceptions import OptimizerError
from repro.parallel.sharding import (
    ShardPlanner,
    execute_shard,
    merge_shard_outcomes,
    sharded_moqo,
)
from repro.query.join_graph import JoinGraph
from repro.query.synthetic import GraphShape, synthetic_query, synthetic_schema

import random

#: Small operator space keeps the random-graph sweep fast while still
#: exercising every operator family.
CONFIG = OptimizerConfig(dop_values=(1, 2), sampling_rates=(0.02,))


@pytest.fixture(scope="module")
def cost_model():
    return CostModel(synthetic_schema(num_tables=6, seed=11))


def random_preferences(rng: random.Random, num_objectives: int) -> Preferences:
    objectives = tuple(
        sorted(rng.sample(ALL_OBJECTIVES, num_objectives),
               key=lambda o: o.index)
    )
    weights = tuple(rng.uniform(0.0, 1.0) for _ in objectives)
    return Preferences(objectives=objectives, weights=weights)


def frontier_costs(result):
    return [cost for cost, _ in result.frontier]


class TestShardedEqualsUnsharded:
    @pytest.mark.parametrize("shape", list(GraphShape))
    @pytest.mark.parametrize("num_shards", [2, 3, 7])
    def test_rta_random_graphs(self, cost_model, shape, num_shards):
        rng = random.Random(hash((shape.value, num_shards)) & 0xFFFF)
        for trial in range(3):
            num_tables = rng.randint(2, 5)
            query = synthetic_query(shape, num_tables, seed=trial)
            preferences = random_preferences(rng, rng.randint(2, 4))
            alpha = rng.choice([1.2, 1.5, 2.0])
            base = rta(query, cost_model, preferences, alpha, CONFIG)
            sharded = sharded_moqo(
                query, cost_model, preferences, alpha, CONFIG,
                algorithm="rta", num_shards=num_shards,
            )
            assert frontier_costs(sharded) == frontier_costs(base)
            assert sharded.plan_cost == base.plan_cost
            assert sharded.plan.describe() == base.plan.describe()

    @pytest.mark.parametrize("shape", [GraphShape.CHAIN, GraphShape.STAR,
                                       GraphShape.CLIQUE])
    def test_exa_random_graphs(self, cost_model, shape):
        rng = random.Random(hash(shape.value) & 0xFFFF)
        for trial in range(3):
            num_tables = rng.randint(2, 4)
            query = synthetic_query(shape, num_tables, seed=trial)
            preferences = random_preferences(rng, rng.randint(2, 3))
            base = exact_moqo(query, cost_model, preferences, CONFIG)
            sharded = sharded_moqo(
                query, cost_model, preferences, 1.0, CONFIG,
                algorithm="exa", num_shards=rng.randint(2, 6),
            )
            assert frontier_costs(sharded) == frontier_costs(base)
            assert sharded.plan_cost == base.plan_cost

    def test_strict_mode(self, cost_model):
        rng = random.Random(5)
        query = synthetic_query(GraphShape.CYCLE, 4, seed=2)
        preferences = random_preferences(rng, 3)
        base = rta(query, cost_model, preferences, 1.5, CONFIG, strict=True)
        sharded = sharded_moqo(
            query, cost_model, preferences, 1.5, CONFIG,
            algorithm="rta", num_shards=3, strict=True,
        )
        assert frontier_costs(sharded) == frontier_costs(base)

    def test_more_shards_than_splits(self, cost_model):
        """Shard counts beyond the split count degrade gracefully."""
        query = synthetic_query(GraphShape.CHAIN, 2, seed=0)
        preferences = random_preferences(random.Random(1), 2)
        base = rta(query, cost_model, preferences, 1.5, CONFIG)
        sharded = sharded_moqo(
            query, cost_model, preferences, 1.5, CONFIG,
            algorithm="rta", num_shards=16,
        )
        assert frontier_costs(sharded) == frontier_costs(base)

    def test_single_table_query(self, cost_model):
        query = synthetic_query(GraphShape.CHAIN, 1, seed=0)
        preferences = random_preferences(random.Random(2), 2)
        base = rta(query, cost_model, preferences, 1.5, CONFIG)
        sharded = sharded_moqo(
            query, cost_model, preferences, 1.5, CONFIG,
            algorithm="rta", num_shards=3,
        )
        assert frontier_costs(sharded) == frontier_costs(base)

    def test_shard_outcomes_partition_the_frontier_work(self, cost_model):
        """Every shard reports only entries from its own split range."""
        query = synthetic_query(GraphShape.CLIQUE, 4, seed=3)
        preferences = random_preferences(random.Random(7), 3)
        planner = ShardPlanner(num_shards=3)
        tasks = planner.plan_query_shards(
            query, preferences, "rta", 1.5, CONFIG
        )
        graph = JoinGraph(query)
        num_splits = len(list(graph.splits(graph.full_mask)))
        ranges = [(task.split_start, task.split_stop) for task in tasks]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == num_splits
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start  # contiguous, no gaps and no overlap
        outcomes = [execute_shard(task, cost_model) for task in tasks]
        merged = merge_shard_outcomes(tasks[0], outcomes, elapsed_ms=0.0)
        base = rta(query, cost_model, preferences, 1.5, CONFIG)
        assert frontier_costs(merged) == frontier_costs(base)
        # The merge may drop cross-shard-dominated entries but never
        # invent ones no shard reported.
        reported = sum(len(outcome.entries) for outcome in outcomes)
        assert len(merged.frontier) <= reported


class TestShardPlanner:
    def test_split_ranges_cover_exactly(self):
        planner = ShardPlanner(num_shards=4)
        ranges = planner.split_ranges(10)
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        covered = sum(stop - start for start, stop in ranges)
        assert covered == 10

    def test_split_ranges_degenerate(self):
        assert ShardPlanner(num_shards=5).split_ranges(2) == [(0, 1), (1, 2)]
        assert ShardPlanner(num_shards=3).split_ranges(0) == [(0, 0)]

    def test_rejects_bad_shard_count(self):
        with pytest.raises(OptimizerError):
            ShardPlanner(num_shards=0)

    def test_unshardable_algorithm_rejected(self, cost_model):
        query = synthetic_query(GraphShape.CHAIN, 3, seed=0)
        preferences = random_preferences(random.Random(3), 2)
        with pytest.raises(OptimizerError):
            ShardPlanner(num_shards=2).plan_query_shards(
                query, preferences, "ira", 1.5, CONFIG
            )

    def test_partition_requests_by_fingerprint(self, cost_model):
        from repro.core.request import OptimizationRequest

        rng = random.Random(9)
        query_a = synthetic_query(GraphShape.CHAIN, 3, seed=1)
        query_b = synthetic_query(GraphShape.STAR, 3, seed=1)
        preferences = random_preferences(rng, 2)
        request_a = OptimizationRequest(
            query=query_a, preferences=preferences, algorithm="rta"
        )
        request_b = OptimizationRequest(
            query=query_b, preferences=preferences, algorithm="rta"
        )
        batch = [request_a, request_b, request_a, request_b, request_a]
        planner = ShardPlanner(num_shards=4)
        groups = planner.partition_requests(batch)
        positions = sorted(p for group in groups for p in group)
        assert positions == [0, 1, 2, 3, 4]
        # Fingerprint-equal requests always land in the same group.
        group_of = {}
        for index, group in enumerate(groups):
            for position in group:
                group_of[position] = index
        assert group_of[0] == group_of[2] == group_of[4]
        assert group_of[1] == group_of[3]
