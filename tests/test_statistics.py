"""Histogram selectivity estimation, incl. hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.catalog.statistics import (
    Histogram,
    equality_predicate,
    range_predicate,
)
from repro.exceptions import CatalogError


class TestConstruction:
    def test_from_values_equi_depth(self):
        histogram = Histogram.from_values("c", list(range(100)), buckets=4)
        assert histogram.num_buckets == 4
        assert histogram.low == 0
        assert histogram.high == 99

    def test_from_values_rejects_empty(self):
        with pytest.raises(CatalogError):
            Histogram.from_values("c", [])

    def test_uniform(self):
        histogram = Histogram.uniform("c", 0, 100, row_count=1000,
                                      n_distinct=100)
        assert histogram.num_buckets == 10
        assert histogram.range_selectivity(0, 50) == pytest.approx(0.5)

    def test_rejects_descending_bounds(self):
        with pytest.raises(CatalogError):
            Histogram("c", (2.0, 1.0), row_count=10, n_distinct=5)

    def test_skewed_sample_collapses_buckets(self):
        histogram = Histogram.from_values("c", [5.0] * 50 + [9.0], buckets=5)
        assert histogram.low == 5.0
        assert histogram.high == 9.0


class TestSelectivity:
    @pytest.fixture
    def uniform(self):
        return Histogram.uniform("c", 0, 100, row_count=10_000,
                                 n_distinct=1000)

    def test_out_of_range(self, uniform):
        assert uniform.less_than_selectivity(-5) == 0.0
        assert uniform.less_than_selectivity(200) == 1.0
        assert uniform.equality_selectivity(-1) == 0.0

    def test_midpoint(self, uniform):
        assert uniform.less_than_selectivity(50) == pytest.approx(0.5)

    def test_range_composition(self, uniform):
        full = uniform.range_selectivity(None, None)
        assert full == pytest.approx(1.0)
        left = uniform.range_selectivity(None, 30)
        right = uniform.range_selectivity(30, None)
        assert left + right == pytest.approx(1.0)

    def test_equality_uses_ndv(self, uniform):
        assert uniform.equality_selectivity(42) == pytest.approx(1e-3)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200),
           st.floats(-1e6, 1e6))
    def test_less_than_monotone(self, values, probe):
        histogram = Histogram.from_values("c", values)
        lower = histogram.less_than_selectivity(probe)
        higher = histogram.less_than_selectivity(probe + 1.0)
        assert 0.0 <= lower <= higher <= 1.0

    @given(st.lists(st.floats(0, 1e4), min_size=5, max_size=100,
                    unique=True))
    def test_empirical_accuracy_on_sample(self, values):
        """The histogram approximates the sample's empirical CDF.

        Restricted to duplicate-free samples: with heavy ties at the
        probe value a boundary-only histogram cannot distinguish
        ``<`` from ``<=`` (a known limitation, not a bug).
        """
        histogram = Histogram.from_values("c", values, buckets=10)
        probe = sorted(values)[len(values) // 2]
        estimated = histogram.less_than_selectivity(probe)
        actual = sum(1 for v in values if v < probe) / len(values)
        # Equi-depth buckets bound the error by ~2 buckets.
        assert abs(estimated - actual) <= 0.25


class TestPredicateBuilders:
    @pytest.fixture
    def orders(self, small_schema):
        return small_schema.table("orders")

    @pytest.fixture
    def histogram(self):
        return Histogram.uniform("order_id", 0, 1000, row_count=1000,
                                 n_distinct=1000)

    def test_range_predicate(self, orders, histogram):
        predicate = range_predicate(orders, "orders", "order_id",
                                    histogram, low=0, high=100)
        assert predicate.selectivity == pytest.approx(0.1)
        assert "order_id" in predicate.description

    def test_empty_range_clamped_to_floor(self, orders, histogram):
        predicate = range_predicate(orders, "orders", "order_id",
                                    histogram, low=5000, high=6000)
        assert predicate.selectivity == pytest.approx(1.0 / 1000)

    def test_equality_predicate(self, orders, histogram):
        predicate = equality_predicate(orders, "orders", "order_id",
                                       histogram, value=7)
        assert predicate.selectivity == pytest.approx(1e-3)

    def test_column_mismatch_rejected(self, orders, histogram):
        with pytest.raises(CatalogError):
            range_predicate(orders, "orders", "status", histogram, 0, 1)

    def test_unknown_column_rejected(self, orders):
        histogram = Histogram.uniform("nope", 0, 1, 10, 5)
        from repro.exceptions import UnknownColumnError

        with pytest.raises(UnknownColumnError):
            range_predicate(orders, "orders", "nope", histogram, 0, 1)

    def test_predicate_usable_in_optimizer(self, small_schema, histogram):
        """End to end: histogram-derived predicate drives optimization."""
        from repro import (
            MultiObjectiveOptimizer,
            Objective,
            Preferences,
            Query,
            TableRef,
        )
        from tests.conftest import TINY_CONFIG

        predicate = range_predicate(
            small_schema.table("orders"), "orders", "order_id",
            histogram, low=0, high=100,
        )
        query = Query("hist_q", (TableRef("orders", "orders"),),
                      filters=(predicate,))
        optimizer = MultiObjectiveOptimizer(small_schema, config=TINY_CONFIG)
        prefs = Preferences(
            objectives=(Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights=(1.0, 1.0),
        )
        result = optimizer.optimize(query, prefs, algorithm="exa")
        # 1000 rows * 0.1 -> 100 estimated output rows.
        full_scan_rows = [
            plan.rows for _, plan in result.frontier if plan.loss == 0.0
        ]
        assert any(abs(rows - 100) < 1 for rows in full_scan_rows)