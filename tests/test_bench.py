"""Benchmark harness: runner aggregation, reporting, experiment wiring."""

import math

import pytest

from repro.bench import (
    BENCH_CONFIG,
    FIGURE9_VARIANTS,
    RUNNING_EXAMPLE_VECTORS,
    Variant,
    bounded_optimum,
    classify_vectors,
    exa_time_complexity,
    figure7_data,
    figure8_pathology,
    format_figure,
    format_series,
    format_table,
    n_bushy,
    n_stored,
    pareto_frontier,
    rta_time_complexity,
    run_comparison,
    selinger_time_complexity,
    weighted_optimum,
)
from repro.bench.experiments import make_optimizer
from repro.bench.reporting import FIGURE9_METRICS
from repro.workload import WorkloadGenerator


class TestComplexityFormulas:
    def test_n_bushy_matches_paper_formula(self):
        # j^(2n-1) * (2(n-1))!/(n-1)!; n=2, j=6 -> 6^3 * 2!/1! = 432.
        assert n_bushy(6, 2) == pytest.approx(432)

    def test_exa_quadratic_in_plan_count(self):
        assert exa_time_complexity(6, 3) == pytest.approx(n_bushy(6, 3) ** 2)

    def test_selinger_smallest(self):
        for n in range(2, 11):
            assert selinger_time_complexity(6, n) < exa_time_complexity(6, n)

    def test_rta_between_for_large_n(self):
        # Figure 7's qualitative ordering for larger n.
        for n in (8, 9, 10):
            rta = rta_time_complexity(6, n, 1e5, 1.5, 3)
            assert selinger_time_complexity(6, n) < rta
            assert rta < exa_time_complexity(6, n)

    def test_finer_alpha_costs_more(self):
        fine = rta_time_complexity(6, 5, 1e5, 1.05, 3)
        coarse = rta_time_complexity(6, 5, 1e5, 1.5, 3)
        assert fine > coarse

    def test_n_stored_grows_with_objectives(self):
        assert n_stored(1e5, 5, 1.1, 6) > n_stored(1e5, 5, 1.1, 3)

    def test_figure7_data_shape(self):
        data = figure7_data()
        assert set(data) == {"n", "EXA", "RTA(1.05)", "RTA(1.5)", "Selinger"}
        assert len(data["EXA"]) == len(data["n"])
        # EXA eventually dwarfs everything (crossover, Figure 7).
        assert data["EXA"][-1] > data["RTA(1.05)"][-1]


class TestRunningExample:
    def test_weighted_and_bounded_optima_differ(self):
        assert weighted_optimum() != bounded_optimum()

    def test_bounded_optimum_respects_bounds(self):
        from repro.bench.running_example import RUNNING_EXAMPLE_BOUNDS

        optimum = bounded_optimum()
        assert all(c <= b for c, b in zip(optimum, RUNNING_EXAMPLE_BOUNDS))

    def test_frontier_subset_of_vectors(self):
        frontier = pareto_frontier()
        assert set(frontier) <= {
            tuple(map(float, v)) for v in RUNNING_EXAMPLE_VECTORS
        }
        assert len(frontier) >= 3

    def test_classification_partitions(self):
        classes = classify_vectors(alpha=1.5)
        total = (
            len(classes["dominated"])
            + len(classes["approximately_dominated"])
            + len(classes["kept"])
        )
        assert total == len(RUNNING_EXAMPLE_VECTORS)
        # Figure 6 needs a non-empty approximately-dominated region.
        assert classes["approximately_dominated"]

    def test_figure8_pathology_holds(self):
        pathology = figure8_pathology()
        assert pathology["kept_approx_dominates"]
        assert pathology["discarded_respects_bounds"]
        assert not pathology["kept_respects_bounds"]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            "demo", ["c1", "c2"], [("row", [1.0, 2.0]), ("other", [3.0, 4.0])]
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "c1" in lines[1] and "row" in lines[3]

    def test_format_value_ranges(self):
        text = format_table(
            "v", ["a"], [("r", [float("nan")]), ("s", [1e9]), ("t", [0.001])]
        )
        assert "-" in text and "1.00e+09" in text and "0.001" in text

    def test_format_series(self):
        text = format_series("curves", {"n": [1.0, 2.0], "EXA": [10.0, 20.0]})
        assert "n=1" in text and "EXA" in text


class TestRunner:
    @pytest.fixture(scope="class")
    def mini(self):
        optimizer = make_optimizer(timeout_seconds=5.0)
        generator = WorkloadGenerator(
            optimizer.schema, config=BENCH_CONFIG, seed=3
        )
        cases = generator.weighted_cases(3, num_objectives=3, count=2)
        variants = (Variant("EXA", "exa"), Variant("RTA(2)", "rta", 2.0))
        return run_comparison(optimizer, cases, variants)

    def test_aggregates_per_variant(self, mini):
        assert set(mini) == {"EXA", "RTA(2)"}
        for aggregate in mini.values():
            assert aggregate.cases == 2
            assert aggregate.avg_time_ms > 0
            assert aggregate.avg_memory_kb > 0

    def test_exa_defines_best_cost(self, mini):
        # EXA (no timeout on q3) achieves the optimum -> 100%.
        assert mini["EXA"].avg_weighted_cost_pct == pytest.approx(100.0)
        # RTA(2) within its guarantee.
        assert mini["RTA(2)"].avg_weighted_cost_pct <= 200.0 + 1e-9

    def test_format_figure_renders(self, mini):
        from repro.bench.experiments import FigureCell

        cell = FigureCell(3, 3, mini)
        text = format_figure("Figure 9 (test)", [cell], FIGURE9_METRICS)
        assert "timeouts (%)" in text
        assert "q3/l=3" in text
        assert "RTA(2)" in text

    def test_empty_cases_rejected(self):
        optimizer = make_optimizer(timeout_seconds=1.0)
        with pytest.raises(ValueError):
            run_comparison(optimizer, [], FIGURE9_VARIANTS)

    def test_variant_labels_unique(self):
        labels = [v.label for v in FIGURE9_VARIANTS]
        assert len(set(labels)) == len(labels)
