"""Deadline accounting and the deadline-aware scheduler."""

from __future__ import annotations

import time

import pytest

from repro.config import OptimizerConfig
from repro.core.request import OptimizationRequest
from repro.core.service import OptimizerService
from repro.core.preferences import Preferences
from repro.cost.objectives import Objective
from repro.parallel.deadline import DeadlineScheduler
from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema


@pytest.fixture(scope="module")
def schema():
    return make_small_schema()


@pytest.fixture(scope="module")
def preferences():
    return Preferences.from_maps(
        (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
        weights={Objective.TOTAL_TIME: 1.0},
    )


def make_request(preferences, algorithm="rta", **kwargs):
    return OptimizationRequest(
        query=make_chain_query(3),
        preferences=preferences,
        algorithm=algorithm,
        **kwargs,
    )


class TestDeadlineHitReporting:
    @pytest.mark.parametrize(
        "algorithm", ["exa", "rta", "ira", "selinger", "wsum", "idp"]
    )
    def test_all_algorithms_report_deadline_hit(
        self, schema, preferences, algorithm
    ):
        """Every registered algorithm surfaces an exceeded deadline."""
        service = OptimizerService(schema, config=TINY_CONFIG,
                                   backend="inline", cache_size=0)
        prefs = preferences
        if algorithm == "selinger":
            prefs = Preferences.from_maps(
                (Objective.TOTAL_TIME,),
                weights={Objective.TOTAL_TIME: 1.0},
            )
        request = make_request(
            prefs, algorithm=algorithm, timeout_seconds=1e-9
        )
        result = service.submit(request)
        assert result.deadline_hit
        # The paper's fallback still produces a plan.
        assert result.plan is not None

    def test_no_deadline_means_no_hit(self, schema, preferences):
        service = OptimizerService(schema, config=TINY_CONFIG,
                                   backend="inline")
        result = service.submit(make_request(preferences))
        assert not result.deadline_hit
        assert not result.timed_out

    def test_deadline_hit_without_fallback_trip(self, schema, preferences):
        """Small queries can miss the deadline between periodic checks.

        With the check interval pushed beyond the candidate count the
        enumerator never flips into fallback mode (``timed_out`` stays
        False), yet the end-of-run accounting still reports the miss.
        """
        config = OptimizerConfig(
            dop_values=(1,),
            sampling_rates=(),
            timeout_check_interval=10**9,
        )
        service = OptimizerService(schema, config=config, backend="inline",
                                   cache_size=0)
        result = service.submit(
            make_request(preferences, timeout_seconds=1e-9)
        )
        assert result.deadline_hit
        assert not result.timed_out

    def test_missed_deadlines_are_not_cached(self, schema, preferences):
        service = OptimizerService(schema, config=TINY_CONFIG,
                                   backend="inline", cache_size=16)
        request = make_request(preferences, timeout_seconds=1e-9)
        service.submit(request)
        assert len(service.cache) == 0
        snapshot = service.metrics.snapshot()
        assert snapshot["deadline_hits"] == 1


class TestDeadlineScheduler:
    def test_no_budget_passes_through(self, preferences):
        scheduler = DeadlineScheduler()
        request = make_request(preferences)
        assert scheduler.admit(request) is None
        scheduled = scheduler.resolve(request, None)
        assert scheduled.request is request
        assert not scheduled.expired and not scheduled.rerouted

    def test_queueing_time_counts(self, preferences):
        scheduler = DeadlineScheduler(route_fraction=0.0)
        request = make_request(preferences, timeout_seconds=10.0)
        admitted = 1000.0
        deadline = scheduler.admit(request, now=admitted)
        assert deadline == pytest.approx(1010.0)
        # 4 seconds queued: only 6 remain for execution.
        scheduled = scheduler.resolve(request, deadline, now=admitted + 4.0)
        assert scheduled.request.timeout_seconds == pytest.approx(6.0)
        assert not scheduled.expired

    def test_near_deadline_routes_to_ira(self, preferences):
        scheduler = DeadlineScheduler(route_fraction=0.5)
        request = make_request(preferences, algorithm="rta",
                               alpha=1.25, timeout_seconds=10.0)
        deadline = scheduler.admit(request, now=0.0)
        scheduled = scheduler.resolve(request, deadline, now=6.0)
        assert scheduled.rerouted
        assert scheduled.request.algorithm == "ira"
        assert scheduled.request.alpha == 1.25  # caller precision kept
        assert scheduled.request.timeout_seconds == pytest.approx(4.0)

    def test_reroute_uses_anytime_alpha_for_exact_requests(
        self, preferences
    ):
        scheduler = DeadlineScheduler(route_fraction=0.5, anytime_alpha=2.0)
        request = make_request(preferences, algorithm="exa",
                               timeout_seconds=10.0)
        scheduled = scheduler.resolve(
            request, scheduler.admit(request, now=0.0), now=7.0
        )
        assert scheduled.rerouted
        assert scheduled.request.algorithm == "ira"
        assert scheduled.request.alpha == 2.0

    def test_expired_budget_degrades_to_fallback(self, preferences):
        scheduler = DeadlineScheduler()
        request = make_request(preferences, timeout_seconds=1.0)
        scheduled = scheduler.resolve(
            request, scheduler.admit(request, now=0.0), now=5.0
        )
        assert scheduled.expired
        assert scheduled.request.timeout_seconds == pytest.approx(
            scheduler.expired_slice_seconds
        )

    def test_config_timeout_is_a_budget_too(self, preferences):
        scheduler = DeadlineScheduler()
        request = make_request(
            preferences, config=TINY_CONFIG.with_timeout(3.0)
        )
        deadline = scheduler.admit(request, now=0.0)
        assert deadline == pytest.approx(3.0)

    def test_service_default_timeout_is_a_budget_too(
        self, schema, preferences
    ):
        """A service-wide config timeout admits requests that carry no
        timeout of their own — the scheduler is not a no-op for them."""
        scheduler = DeadlineScheduler()
        request = make_request(preferences)  # no per-request timeout
        assert scheduler.admit(request, now=0.0, default_timeout=5.0) == (
            pytest.approx(5.0)
        )
        service = OptimizerService(
            schema, config=TINY_CONFIG.with_timeout(5.0),
            backend="inline", scheduler=scheduler, cache_size=0,
        )
        result = service.submit(
            request, admitted_epoch=time.time() - 60.0
        )
        assert result.deadline_hit  # budget from the service config

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineScheduler(route_fraction=1.5)
        with pytest.raises(ValueError):
            DeadlineScheduler(anytime_alpha=0.5)
        with pytest.raises(Exception):
            DeadlineScheduler(anytime_algorithm="nope")


class TestSchedulerServiceIntegration:
    def test_expired_request_reports_hit(self, schema, preferences):
        scheduler = DeadlineScheduler()
        service = OptimizerService(
            schema, config=TINY_CONFIG, backend="inline",
            scheduler=scheduler, cache_size=0,
        )
        request = make_request(preferences, timeout_seconds=5.0)
        # Admitted 60 (pretend) seconds ago: the budget is gone before
        # execution starts — queueing counted against the deadline.
        result = service.submit(
            request, admitted_epoch=time.time() - 60.0
        )
        assert result.deadline_hit
        assert result.plan is not None
        assert service.metrics.snapshot()["deadline_hits"] == 1

    def test_fresh_request_runs_normally(self, schema, preferences):
        service = OptimizerService(
            schema, config=TINY_CONFIG, backend="inline",
            scheduler=DeadlineScheduler(),
        )
        result = service.submit(
            make_request(preferences, timeout_seconds=60.0)
        )
        assert not result.deadline_hit

    def test_rerouted_results_never_poison_the_cache(
        self, schema, preferences
    ):
        """A result the scheduler rerouted to IRA must not be served to
        later full-budget requests for the original algorithm."""
        service = OptimizerService(
            schema, config=TINY_CONFIG, backend="inline",
            scheduler=DeadlineScheduler(route_fraction=0.5),
            cache_size=16,
        )
        request = make_request(preferences, algorithm="rta",
                               timeout_seconds=30.0)
        # Admitted 20 (pretend) seconds ago: under half the budget
        # remains, so the scheduler reroutes to the anytime path.
        rerouted = service.submit(
            request, admitted_epoch=time.time() - 20.0
        )
        assert rerouted.algorithm == "ira"
        assert len(service.cache) == 0
        fresh = service.submit(request)  # full budget: real RTA run
        assert fresh.algorithm == "rta"

    def test_completed_budgeted_results_are_cached(
        self, schema, preferences
    ):
        """A run that finished inside its (rewritten) budget is
        identical to a full-budget run, so it is cacheable under the
        original fingerprint."""
        service = OptimizerService(
            schema, config=TINY_CONFIG, backend="inline",
            scheduler=DeadlineScheduler(),
            cache_size=16,
        )
        request = make_request(preferences, timeout_seconds=60.0)
        service.submit(request)
        assert len(service.cache) == 1
        service.submit(request)
        assert service.metrics.snapshot()["cache_hits"] == 1

    def test_sharded_run_shares_one_budget(self, schema, preferences):
        """Sequential shard execution must not multiply the deadline."""
        from repro.cost.model import CostModel
        from repro.parallel.sharding import sharded_moqo

        result = sharded_moqo(
            make_chain_query(3), CostModel(schema), preferences,
            1.5, TINY_CONFIG, algorithm="rta", num_shards=3,
            budget_seconds=1e-9,
        )
        assert result.deadline_hit
        assert result.plan is not None  # fallback, not a failure

    def test_near_deadline_batch_reroutes(self, schema, preferences):
        executed = []
        service = OptimizerService(
            schema, config=TINY_CONFIG, backend="inline",
            scheduler=DeadlineScheduler(route_fraction=1.0),
            hooks=[lambda record: executed.append(record.algorithm)],
            cache_size=0,
        )
        # route_fraction=1.0 makes any nonzero queueing delay trigger
        # the anytime reroute.
        service.submit(
            make_request(preferences, algorithm="rta",
                         timeout_seconds=30.0),
            admitted_epoch=time.time() - 1.0,
        )
        assert executed == ["ira"]
