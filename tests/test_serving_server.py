"""End-to-end tests for the asyncio optimizer server.

pytest-asyncio is not installed, so every coroutine scenario runs via
``asyncio.run`` inside a plain sync test (see README). Requests use the
small three-table schema under ``TINY_CONFIG`` so an optimization takes
milliseconds and the whole module stays inside the tier-1 budget.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro import (
    Objective,
    OptimizationRequest,
    OptimizerService,
    Preferences,
)
from repro.parallel.deadline import DeadlineScheduler
from repro.plans.serialize import request_to_dict
from repro.serving import (
    AsyncHttpClient,
    AsyncOptimizerServer,
    ServerThread,
    get_metrics,
    http_request,
    post_optimize,
)
from repro.serving.protocol import (
    CODE_BAD_REQUEST,
    CODE_DEADLINE_EXPIRED,
    CODE_NOT_FOUND,
    CODE_OK,
    CODE_SHED,
)
from tests.conftest import TINY_CONFIG, make_chain_query

PREFS = Preferences.from_maps(
    (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
    weights={Objective.TOTAL_TIME: 1.0, Objective.TUPLE_LOSS: 1.0},
)


def make_request(alpha: float = 1.5, tables: int = 3) -> OptimizationRequest:
    return OptimizationRequest(
        query=make_chain_query(tables),
        preferences=PREFS,
        algorithm="rta",
        alpha=alpha,
    )


def make_payload(alpha: float = 1.5, tables: int = 3) -> dict:
    return request_to_dict(make_request(alpha=alpha, tables=tables))


def make_service(small_schema, **kwargs) -> OptimizerService:
    kwargs.setdefault("config", TINY_CONFIG)
    return OptimizerService(small_schema, **kwargs)


class TestCoalescing:
    def test_concurrent_identical_requests_run_one_optimization(
        self, small_schema
    ):
        """The acceptance-criterion test: M concurrent identical
        requests produce exactly one underlying optimization, observed
        through ServiceMetrics, and bitwise-equal result payloads."""
        M = 6
        service = make_service(small_schema)
        payload = make_payload()

        async def scenario():
            server = AsyncOptimizerServer(
                service, max_in_flight=2, owns_service=True
            )
            async with server:
                host, port = server.address

                async def one_call():
                    async with AsyncHttpClient(host, port) as client:
                        return await client.optimize(payload)

                outcomes = await asyncio.gather(
                    *(one_call() for _ in range(M))
                )
            return outcomes

        outcomes = asyncio.run(scenario())

        envelopes = [envelope for envelope, _body in outcomes]
        assert all(e.code == CODE_OK for e in envelopes)
        # Exactly one optimization ran underneath: one cache miss, no
        # cache hits (followers never reached the service at all).
        snapshot = service.metrics.snapshot()
        assert snapshot["requests"] == 1
        assert snapshot["cache_misses"] == 1
        assert snapshot["cache_hits"] == 0
        assert snapshot["coalesce_hits"] == M - 1
        # All requests shared one fingerprint and one result payload —
        # bitwise equality via canonical JSON of the result dict.
        assert len({e.fingerprint for e in envelopes}) == 1
        canonical = {
            json.dumps(e.result, sort_keys=True) for e in envelopes
        }
        assert len(canonical) == 1
        assert sum(1 for e in envelopes if e.coalesced) == M - 1
        assert sum(1 for e in envelopes if not e.coalesced) == 1

    def test_distinct_requests_do_not_coalesce(self, small_schema):
        service = make_service(small_schema)

        async def scenario():
            server = AsyncOptimizerServer(
                service, max_in_flight=4, owns_service=True
            )
            async with server:
                host, port = server.address

                async def one_call(alpha):
                    async with AsyncHttpClient(host, port) as client:
                        envelope, _ = await client.optimize(
                            make_payload(alpha=alpha)
                        )
                        return envelope

            # distinct alphas -> distinct fingerprints -> no coalescing
                return await asyncio.gather(
                    one_call(1.5), one_call(2.0), one_call(3.0)
                )

        envelopes = asyncio.run(scenario())
        assert all(e.code == CODE_OK for e in envelopes)
        assert not any(e.coalesced for e in envelopes)
        assert len({e.fingerprint for e in envelopes}) == 3
        assert service.metrics.snapshot()["cache_misses"] == 3

    def test_sequential_repeat_hits_plan_cache(self, small_schema):
        service = make_service(small_schema)

        async def scenario():
            server = AsyncOptimizerServer(service, owns_service=True)
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    first, _ = await client.optimize(make_payload())
                    second, _ = await client.optimize(make_payload())
            return first, second

        first, second = asyncio.run(scenario())
        assert first.code == CODE_OK and second.code == CODE_OK
        # The second wave is a plan-cache hit, not a coalesce hit.
        snapshot = service.metrics.snapshot()
        assert snapshot["cache_hits"] == 1
        assert snapshot["coalesce_hits"] == 0
        assert json.dumps(first.result, sort_keys=True) == json.dumps(
            second.result, sort_keys=True
        )


class TestAdmissionAndShedding:
    def test_overload_sheds_with_429(self, small_schema):
        service = make_service(small_schema)
        release = threading.Event()
        real_submit = service.submit

        def slow_submit(request, **kwargs):
            release.wait(timeout=30)
            return real_submit(request, **kwargs)

        service.submit = slow_submit  # type: ignore[method-assign]

        async def scenario():
            server = AsyncOptimizerServer(
                service,
                max_in_flight=1,
                max_queue_depth=0,
                owns_service=True,
            )
            async with server:
                host, port = server.address
                first_client = AsyncHttpClient(host, port)
                first = asyncio.ensure_future(
                    first_client.optimize(make_payload(alpha=1.5))
                )
                # Wait until the first request occupies the only slot.
                while server.admission.running == 0:
                    await asyncio.sleep(0.01)
                # A *distinct* request now finds no capacity -> 429.
                async with AsyncHttpClient(host, port) as client:
                    status, body = await client.request(
                        "POST", "/optimize", make_payload(alpha=4.0)
                    )
                release.set()
                shed_envelope = json.loads(body)
                first_envelope, _ = await first
                await first_client.close()
            return status, shed_envelope, first_envelope, server

        status, shed_envelope, first_envelope, server = asyncio.run(
            scenario()
        )
        assert status == 429
        assert shed_envelope["code"] == CODE_SHED
        assert first_envelope.code == CODE_OK
        assert server.admission.shed == 1
        assert server.metrics.sheds == 1
        assert service.metrics.sheds == 1

    def test_identical_request_coalesces_instead_of_shedding(
        self, small_schema
    ):
        """A full server still absorbs identical requests: coalescing
        is checked before admission, so twins ride the in-flight work
        instead of burning queue capacity."""
        service = make_service(small_schema)
        release = threading.Event()
        real_submit = service.submit

        def slow_submit(request, **kwargs):
            release.wait(timeout=30)
            return real_submit(request, **kwargs)

        service.submit = slow_submit  # type: ignore[method-assign]

        async def scenario():
            server = AsyncOptimizerServer(
                service,
                max_in_flight=1,
                max_queue_depth=0,
                owns_service=True,
            )
            async with server:
                host, port = server.address
                leader_client = AsyncHttpClient(host, port)
                leader = asyncio.ensure_future(
                    leader_client.optimize(make_payload())
                )
                while server.admission.running == 0:
                    await asyncio.sleep(0.01)
                follower_client = AsyncHttpClient(host, port)
                follower = asyncio.ensure_future(
                    follower_client.optimize(make_payload())
                )
                await asyncio.sleep(0.05)
                release.set()
                leader_envelope, _ = await leader
                follower_envelope, _ = await follower
                await leader_client.close()
                await follower_client.close()
            return leader_envelope, follower_envelope

        leader_envelope, follower_envelope = asyncio.run(scenario())
        assert leader_envelope.code == CODE_OK
        assert follower_envelope.code == CODE_OK
        assert follower_envelope.coalesced
        assert service.metrics.sheds == 0


class TestDeadlineIntegration:
    def test_queueing_counts_against_budget(self, small_schema):
        """With an end-to-end budget far below the scheduler's minimum
        slice, the optimization runs as the paper's single-plan
        fallback and the result is flagged deadline_hit."""
        service = make_service(
            small_schema,
            config=TINY_CONFIG.with_timeout(0.001),
            scheduler=DeadlineScheduler(),
        )

        async def scenario():
            server = AsyncOptimizerServer(service, owns_service=True)
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    envelope, _ = await client.optimize(make_payload())
            return envelope

        envelope = asyncio.run(scenario())
        assert envelope.code == CODE_OK
        assert envelope.result["metrics"]["deadline_hit"] is True
        assert service.metrics.snapshot()["deadline_hits"] == 1

    def test_shed_expired_returns_503(self, small_schema):
        service = make_service(
            small_schema,
            config=TINY_CONFIG.with_timeout(0.001),
            scheduler=DeadlineScheduler(),
        )

        async def scenario():
            server = AsyncOptimizerServer(
                service, owns_service=True, shed_expired=True
            )
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    return await client.request(
                        "POST", "/optimize", make_payload()
                    )

        status, body = asyncio.run(scenario())
        assert status == 503
        envelope = json.loads(body)
        assert envelope["code"] == CODE_DEADLINE_EXPIRED
        # Shed before execution: the service never saw the request.
        assert service.metrics.snapshot()["requests"] == 0


class TestHttpSurface:
    def test_routes_and_errors(self, small_schema):
        service = make_service(small_schema)

        async def scenario():
            server = AsyncOptimizerServer(service, owns_service=True)
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    health = await client.request("GET", "/healthz")
                    missing = await client.request("GET", "/nope")
                    bad = await client.request(
                        "POST", "/optimize", {"query": "not a query"}
                    )
            return health, missing, bad

        health, missing, bad = asyncio.run(scenario())
        assert health[0] == 200
        assert missing[0] == 404
        assert json.loads(missing[1])["code"] == CODE_NOT_FOUND
        assert bad[0] == 400
        assert json.loads(bad[1])["code"] == CODE_BAD_REQUEST
        assert service.metrics.snapshot()["requests"] == 0

    def test_metrics_endpoint_sections(self, small_schema):
        service = make_service(small_schema)

        async def scenario():
            server = AsyncOptimizerServer(service, owns_service=True)
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    await client.optimize(make_payload())
                    return await client.metrics()

        snapshot = asyncio.run(scenario())
        assert set(snapshot) == {
            "serving", "admission", "coalescer", "service", "resilience"
        }
        assert snapshot["service"]["requests"] == 1
        assert snapshot["serving"]["responses_by_code"]["ok"] == 1
        assert snapshot["serving"]["latency"]["count"] == 1
        json.dumps(snapshot)

    def test_keep_alive_and_latency_annotation(self, small_schema):
        service = make_service(small_schema)

        async def scenario():
            server = AsyncOptimizerServer(service, owns_service=True)
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    # Several exchanges over ONE connection.
                    first, _ = await client.optimize(make_payload())
                    second, _ = await client.optimize(make_payload())
                    health_status, _ = await client.request(
                        "GET", "/healthz"
                    )
            return first, second, health_status, server

        first, second, health_status, server = asyncio.run(scenario())
        assert health_status == 200
        assert first.latency_ms is not None and first.latency_ms >= 0
        assert second.latency_ms is not None
        assert server.metrics.connections == 1

    def test_oversized_body_rejected(self, small_schema):
        service = make_service(small_schema)

        async def scenario():
            server = AsyncOptimizerServer(service, owns_service=True)
            async with server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"POST /optimize HTTP/1.1\r\n"
                    b"Content-Length: 99999999\r\n\r\n"
                )
                await writer.drain()
                status_line = await reader.readline()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
            return status_line

        status_line = asyncio.run(scenario())
        assert b"400" in status_line


class TestLifecycle:
    def test_stop_is_idempotent_and_closes_owned_service(
        self, small_schema
    ):
        service = make_service(small_schema)

        async def scenario():
            server = AsyncOptimizerServer(service, owns_service=True)
            await server.start()
            await server.stop()
            await server.stop()  # double stop must not raise
            assert service.closed
            service.close()  # and neither must a third close
            return server

        asyncio.run(scenario())

    def test_unowned_service_survives_server_stop(self, small_schema):
        service = make_service(small_schema)

        async def scenario():
            server = AsyncOptimizerServer(service, owns_service=False)
            async with server:
                pass

        asyncio.run(scenario())
        assert not service.closed
        result = service.submit(make_request())
        assert result.plan is not None
        service.close()

    def test_leader_survives_client_disconnect(self, small_schema):
        """A dropped client must not cancel shared in-flight work: the
        optimization completes and lands in the plan cache."""
        service = make_service(small_schema)
        started = threading.Event()
        release = threading.Event()
        real_submit = service.submit

        def slow_submit(request, **kwargs):
            started.set()
            release.wait(timeout=30)
            return real_submit(request, **kwargs)

        service.submit = slow_submit  # type: ignore[method-assign]

        async def scenario():
            server = AsyncOptimizerServer(service, owns_service=True)
            async with server:
                host, port = server.address
                client = AsyncHttpClient(host, port)
                doomed = asyncio.ensure_future(
                    client.optimize(make_payload())
                )
                while not started.is_set():
                    await asyncio.sleep(0.01)
                doomed.cancel()
                await client.close()
                with pytest.raises(asyncio.CancelledError):
                    await doomed
                release.set()
                # The detached leader finishes despite the disconnect.
                while service.metrics.snapshot()["requests"] == 0:
                    await asyncio.sleep(0.01)

        asyncio.run(scenario())
        snapshot = service.metrics.snapshot()
        assert snapshot["cache_misses"] == 1
        # …and the result is in the cache for the next client.
        assert service.cache.get(
            make_request().fingerprint(service.config)
        ) is not None


class TestServerThread:
    def test_blocking_clients_against_thread_hosted_server(
        self, small_schema
    ):
        service = make_service(small_schema)
        server = AsyncOptimizerServer(service, owns_service=True)
        with ServerThread(server) as (host, port):
            envelope, raw = post_optimize(host, port, make_payload())
            assert envelope.code == CODE_OK
            assert b'"status": "ok"' in raw or b'"status":"ok"' in raw
            status, _body = http_request(host, port, "GET", "/healthz")
            assert status == 200
            snapshot = get_metrics(host, port)
            assert snapshot["service"]["requests"] == 1
        assert service.closed

    def test_thread_stop_is_idempotent(self, small_schema):
        service = make_service(small_schema)
        thread = ServerThread(
            AsyncOptimizerServer(service, owns_service=True)
        )
        thread.start()
        thread.stop()
        thread.stop()
        assert service.closed

    def test_concurrent_blocking_clients_coalesce(self, small_schema):
        """Sync clients from real threads — the ServerThread embedding
        exercised the way the multi-tenant example uses it."""
        M = 4
        service = make_service(small_schema)
        server = AsyncOptimizerServer(service, owns_service=True)
        payload = make_payload(alpha=2.5)
        results: list[tuple] = []
        lock = threading.Lock()
        with ServerThread(server) as (host, port):
            barrier = threading.Barrier(M)

            def worker():
                barrier.wait()
                envelope, body = post_optimize(host, port, payload)
                with lock:
                    results.append((envelope, body))

            threads = [
                threading.Thread(target=worker) for _ in range(M)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert len(results) == M
        assert all(e.code == CODE_OK for e, _ in results)
        payloads = {
            json.dumps(e.result, sort_keys=True) for e, _ in results
        }
        assert len(payloads) == 1
        snapshot = service.metrics.snapshot()
        # Concurrency across OS threads is not perfectly simultaneous:
        # late arrivals may land after the leader finished and hit the
        # plan cache instead of the coalescer. Either way, exactly one
        # optimization ran.
        assert snapshot["cache_misses"] == 1
        assert (
            snapshot["coalesce_hits"] + snapshot["cache_hits"] == M - 1
        )


class TestObservability:
    def test_healthz_reports_build_and_uptime(self, small_schema):
        import repro

        service = make_service(small_schema)

        async def scenario():
            server = AsyncOptimizerServer(service, owns_service=True)
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    status, body = await client.request("GET", "/healthz")
            return status, json.loads(body)["result"]

        status, health = asyncio.run(scenario())
        assert status == 200
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        assert health["server"] == "repro-optimizer"
        assert health["backend"] == "threads"
        assert health["uptime_seconds"] >= 0
        assert health["tracing"] is False
        assert isinstance(health["pid"], int)

    def test_prometheus_exposition_via_accept_header(self, small_schema):
        import http.client

        from repro.serving import get_metrics_text

        service = make_service(small_schema)
        server = AsyncOptimizerServer(service, owns_service=True)
        with ServerThread(server) as (host, port):
            post_optimize(host, port, make_payload())
            # Content negotiation: Accept: text/plain flips the format.
            connection = http.client.HTTPConnection(host, port, timeout=30)
            connection.request(
                "GET", "/metrics", headers={"Accept": "text/plain"}
            )
            response = connection.getresponse()
            content_type = response.getheader("Content-Type")
            text = response.read().decode("utf-8")
            connection.close()
            # The blocking helper fetches the same exposition.
            helper_text = get_metrics_text(host, port)
            # And the JSON default is unaffected.
            snapshot = get_metrics(host, port)

        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        for series in (
            "repro_service_cache_misses_total 1",
            "repro_serving_coalesce_leaders_total 1",
            "repro_serving_sheds_total 0",
            "repro_serving_deadline_sheds_total 0",
            'repro_phase_ms_total{phase="enumerate"}',
            "repro_serving_latency_ms_count 1",
        ):
            assert series in text, f"missing {series!r} in exposition"
        assert "# TYPE repro_phase_ms_total counter" in helper_text
        assert set(snapshot) == {
            "serving", "admission", "coalescer", "service", "resilience"
        }

    def test_trace_dir_records_phase_breakdown(self, tmp_path):
        """The acceptance-criterion test: a traced serving request's
        phase sum (queue/coalesce/cache/dispatch/enumerate/kernel/
        prune/materialize) lands within 10% of its end-to-end latency,
        and the cache-hit repeat shows no algorithm time at all."""
        from repro.catalog.tpch import tpch_schema
        from repro.config import FAST_CONFIG
        from repro.obs.trace import (
            format_trace_summaries,
            read_spans_jsonl,
            summarize_spans,
        )
        from repro.plans.serialize import request_to_dict
        from repro.query.tpch_queries import tpch_query

        payload = request_to_dict(
            OptimizationRequest(
                query=tpch_query(5),
                preferences=PREFS,
                algorithm="rta",
                alpha=1.5,
            )
        )
        service = OptimizerService(tpch_schema(), config=FAST_CONFIG)
        server = AsyncOptimizerServer(
            service, owns_service=True, trace_dir=tmp_path
        )
        with ServerThread(server) as (host, port):
            first, _ = post_optimize(host, port, payload)
            second, _ = post_optimize(host, port, payload)
        assert first.code == CODE_OK and second.code == CODE_OK

        trace_files = sorted(tmp_path.glob("trace-*.jsonl"))
        assert len(trace_files) == 1
        spans = read_spans_jsonl(trace_files[0])
        summaries = summarize_spans(spans)
        assert len(summaries) == 2

        miss, hit = summaries
        # Cache miss: the optimizer phases dominate and the named
        # phases reconstruct the end-to-end latency within 10%.
        assert miss.phases["enumerate"] > 0
        assert miss.phase_sum_ms >= 0.90 * miss.total_ms
        assert miss.phase_sum_ms <= miss.total_ms * 1.01
        # Cache hit: no algorithm ran; only front-end phases remain.
        assert hit.phases["enumerate"] == 0.0
        assert hit.phases["kernel"] == 0.0
        assert hit.total_ms < miss.total_ms
        # The rendered report carries the breakdown per request.
        report = format_trace_summaries(summaries)
        assert report.count("phase sum") == 2
        for phase in ("queue", "cache", "dispatch", "enumerate"):
            assert phase in report

    def test_tracing_disabled_leaves_no_files(self, small_schema, tmp_path):
        service = make_service(small_schema)

        async def scenario():
            server = AsyncOptimizerServer(service, owns_service=True)
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    envelope, _ = await client.optimize(make_payload())
            return envelope

        envelope = asyncio.run(scenario())
        assert envelope.code == CODE_OK
        assert list(tmp_path.iterdir()) == []
