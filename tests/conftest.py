"""Shared fixtures: a small custom schema, queries, and optimizers."""

from __future__ import annotations

import pytest

from repro import (
    Column,
    DataType,
    FAST_CONFIG,
    Index,
    JoinPredicate,
    FilterPredicate,
    MultiObjectiveOptimizer,
    OptimizerConfig,
    Query,
    Table,
    TableRef,
    build_schema,
    tpch_schema,
)
from repro.cost.model import CostModel


def make_small_schema():
    """Three small tables with indexes — cheap enough for brute force."""
    users = Table(
        "users",
        (
            Column("user_id", DataType.INTEGER, n_distinct=200),
            Column("country", DataType.CHAR, n_distinct=10),
        ),
        row_count=200,
    )
    orders = Table(
        "orders",
        (
            Column("order_id", DataType.INTEGER, n_distinct=1000),
            Column("user_id", DataType.INTEGER, n_distinct=200),
            Column("status", DataType.CHAR, n_distinct=3),
        ),
        row_count=1000,
    )
    items = Table(
        "items",
        (
            Column("item_id", DataType.INTEGER, n_distinct=4000),
            Column("order_id", DataType.INTEGER, n_distinct=1000),
            Column("price", DataType.DECIMAL, n_distinct=500),
        ),
        row_count=4000,
    )
    return build_schema(
        "small",
        [users, orders, items],
        [
            Index("users_pk", "users", ("user_id",), 200, unique=True),
            Index("orders_pk", "orders", ("order_id",), 1000, unique=True),
            Index("orders_user_idx", "orders", ("user_id",), 1000),
            Index("items_order_idx", "items", ("order_id",), 4000),
        ],
    )


def make_chain_query(num_tables: int = 3, with_filters: bool = True) -> Query:
    """users - orders - items chain (prefix of length ``num_tables``)."""
    refs = [
        TableRef("users", "users"),
        TableRef("orders", "orders"),
        TableRef("items", "items"),
    ][:num_tables]
    joins = []
    if num_tables >= 2:
        joins.append(JoinPredicate("users", "user_id", "orders", "user_id"))
    if num_tables >= 3:
        joins.append(JoinPredicate("orders", "order_id", "items", "order_id"))
    filters = ()
    if with_filters:
        filters = (FilterPredicate("users", "country", 0.3, "country = 'CH'"),)
        if num_tables >= 2:
            filters += (
                FilterPredicate("orders", "status", 0.5, "status = 'OPEN'"),
            )
    return Query(
        name=f"chain{num_tables}",
        table_refs=tuple(refs),
        filters=filters,
        joins=tuple(joins),
    )


#: Tiny operator space for brute-force comparisons (keeps the number of
#: possible plans enumerable).
TINY_CONFIG = OptimizerConfig(
    dop_values=(1, 2),
    sampling_rates=(0.02,),
)


@pytest.fixture(scope="session")
def small_schema():
    return make_small_schema()


@pytest.fixture(scope="session")
def small_cost_model(small_schema):
    return CostModel(small_schema)


@pytest.fixture(scope="session")
def chain2():
    return make_chain_query(2)


@pytest.fixture(scope="session")
def chain3():
    return make_chain_query(3)


@pytest.fixture(scope="session")
def tpch():
    return tpch_schema()


@pytest.fixture(scope="session")
def tpch_optimizer(tpch):
    return MultiObjectiveOptimizer(tpch, config=FAST_CONFIG)


@pytest.fixture(scope="session")
def small_optimizer(small_schema):
    return MultiObjectiveOptimizer(small_schema, config=TINY_CONFIG)
