"""End-to-end recovery tests: real SIGKILLed workers, real respawns.

The acceptance scenario of the resilience work: a process-backend batch
under a 20% worker-SIGKILL rate completes with zero client-visible
errors and every result bitwise-equal to the fault-free run, because
the pool strips injected faults on re-dispatch and the executor rebuild
is invisible above the :class:`WorkerPool` API.

These tests spawn worker processes (honoring the ``--workers`` pytest
option) and so carry the ``parallel`` marker like the other pool tests.
"""

from __future__ import annotations

import pytest

from repro.core.request import OptimizationRequest
from repro.core.preferences import Preferences
from repro.core.service import OptimizerService
from repro.cost.objectives import Objective
from repro.exceptions import WorkerCrashError
from repro.plans.serialize import result_to_dict
from repro.resilience import (
    ChaosConfig,
    ChaosInjector,
    CircuitBreaker,
    RetryPolicy,
)
from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema

pytestmark = pytest.mark.parallel

PREFS = Preferences.from_maps(
    (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
    weights={Objective.TOTAL_TIME: 1.0, Objective.TUPLE_LOSS: 2.0},
)


def make_request(alpha=1.5, tables=3, **kwargs) -> OptimizationRequest:
    return OptimizationRequest(
        query=make_chain_query(tables),
        preferences=PREFS,
        algorithm="rta",
        alpha=alpha,
        **kwargs,
    )


def make_batch(count: int) -> list[OptimizationRequest]:
    """``count`` fingerprint-distinct requests (no cache/coalesce help)."""
    return [
        make_request(alpha=1.1 + 0.01 * index, tables=2 + index % 2)
        for index in range(count)
    ]


def signature(result) -> dict:
    """The deterministic part of a result (plan, costs, frontier).

    Run metrics (wall times, worker pids) legitimately differ between
    runs; everything else must be bitwise-identical whether or not a
    worker died along the way.
    """
    payload = result_to_dict(result)
    del payload["metrics"]
    return payload


def chaos_service(chaos: ChaosInjector | None = None, **kwargs):
    kwargs.setdefault("cache_size", 0)
    kwargs.setdefault("workers", 2)
    return OptimizerService(
        make_small_schema(),
        config=TINY_CONFIG,
        backend="processes",
        chaos=chaos,
        **kwargs,
    )


@pytest.fixture(scope="module")
def clean_signatures(parallel_workers):
    """Fault-free reference results for the shared 100-request batch."""
    with chaos_service(workers=parallel_workers) as service:
        results = service.optimize_many(make_batch(100))
    return [signature(result) for result in results]


class TestKillRecovery:
    def test_batch_survives_20_percent_worker_kills(
        self, parallel_workers, clean_signatures
    ):
        """The acceptance criterion: 100 requests, kill_prob=0.2, zero
        client-visible errors, results bitwise-equal to the clean run,
        and the supervision counters prove recovery actually happened."""
        chaos = ChaosInjector(ChaosConfig(seed=11, kill_prob=0.2))
        with chaos_service(chaos, workers=parallel_workers) as service:
            results = service.optimize_many(make_batch(100))
            stats = service.resilience_snapshot()
        assert chaos.injected > 0, "chaos never fired; test proves nothing"
        assert len(results) == 100
        for index, (result, clean) in enumerate(
            zip(results, clean_signatures)
        ):
            if result.degraded:
                # Permitted by the contract: flagged, never silent.
                assert result.plan is not None
                continue
            assert signature(result) == clean, f"request {index} diverged"
        snapshot = service.metrics.snapshot()
        assert snapshot["respawns"] > 0
        assert snapshot["retries"] > 0
        assert snapshot["worker_failures"] > 0
        assert stats["pool"]["respawns"] > 0

    def test_single_submit_survives_a_worker_kill(self, parallel_workers):
        request = make_request()
        with chaos_service(workers=parallel_workers) as service:
            clean = signature(service.submit(request))
        chaos = ChaosInjector(
            ChaosConfig(seed=3, kill_prob=1.0, max_faults=1)
        )
        with chaos_service(chaos, workers=parallel_workers) as service:
            result = service.submit(request)
            stats = service.worker_pool().stats()
        assert chaos.injected == 1
        assert not result.degraded
        assert signature(result) == clean
        assert stats["respawns"] >= 1
        assert stats["worker_failures"] >= 1

    @pytest.mark.parametrize("kind", ["error", "pickle"])
    def test_nonfatal_faults_are_redispatched(self, parallel_workers, kind):
        """Injected executor exceptions and unpicklable results recover
        through re-dispatch without rebuilding the pool."""
        request = make_request(alpha=1.7)
        with chaos_service(workers=parallel_workers) as service:
            clean = signature(service.submit(request))
        chaos = ChaosInjector(
            ChaosConfig(seed=5, max_faults=1, **{f"{kind}_prob": 1.0})
        )
        with chaos_service(chaos, workers=parallel_workers) as service:
            result = signature(service.submit(request))
            stats = service.worker_pool().stats()
        assert chaos.injected == 1
        assert result == clean
        assert stats["redispatches"] >= 1

    def test_heartbeat_catches_a_stuck_worker(self, parallel_workers):
        """A worker sleeping past the heartbeat is treated as dead: the
        pool respawns and the re-dispatch still produces the exact
        fault-free result."""
        request = make_request(alpha=1.9)
        with chaos_service(workers=parallel_workers) as service:
            clean = signature(service.submit(request))
        chaos = ChaosInjector(
            ChaosConfig(
                seed=2, slow_prob=1.0, slow_seconds=30.0, max_faults=1
            )
        )
        with chaos_service(
            chaos, workers=parallel_workers, heartbeat_s=0.25
        ) as service:
            result = signature(service.submit(request))
            stats = service.worker_pool().stats()
        assert result == clean
        assert stats["respawns"] >= 1


class TestDegradationLadder:
    def test_tripped_breaker_runs_in_process_with_identical_results(self):
        """A breaker sitting at the ``threads`` rung must not change
        results — only where they are computed (no pool is ever built)."""
        requests = [make_request(alpha=a) for a in (1.2, 1.5, 2.0)]
        with OptimizerService(
            make_small_schema(), config=TINY_CONFIG, cache_size=0
        ) as inline_service:
            expected = [
                signature(inline_service.submit(r)) for r in requests
            ]
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1e9)
        breaker.record_failure(breaker.decide())  # trip: -> threads
        assert breaker.tripped
        with chaos_service(breaker=breaker) as service:
            got = [signature(service.submit(r)) for r in requests]
            batch = [
                signature(r)
                for r in service.optimize_many(requests)
            ]
            pool_started = service.resilience_snapshot()["pool"]
        assert got == expected
        assert batch == expected
        assert pool_started is None, "tripped breaker must bypass the pool"

    def test_exhausted_retries_degrade_to_flagged_fallback(
        self, monkeypatch
    ):
        """When the pool keeps crashing, the caller gets the paper's
        heuristic fallback plan flagged ``degraded=True`` — and it is
        never cached."""
        service = OptimizerService(
            make_small_schema(),
            config=TINY_CONFIG,
            backend="processes",
            cache_size=8,
            retry_policy=RetryPolicy(max_attempts=1),
        )
        monkeypatch.setattr(
            service,
            "_submit_to_pool",
            lambda *args, **kwargs: (_ for _ in ()).throw(
                WorkerCrashError("injected: pool is gone")
            ),
        )
        request = make_request()
        result = service.submit(request)
        assert result.degraded
        assert result.plan is not None
        assert service.metrics.degraded == 1
        assert service.metrics.worker_failures == 0  # counted by the pool
        key = request.fingerprint(service.config)
        assert service.cache.get(key) is None, "degraded results cached"
        service.close()

    def test_degraded_fallback_can_be_disabled(self, monkeypatch):
        service = OptimizerService(
            make_small_schema(),
            config=TINY_CONFIG,
            backend="processes",
            cache_size=0,
            retry_policy=RetryPolicy(max_attempts=1),
            degraded_fallback=False,
        )
        monkeypatch.setattr(
            service,
            "_submit_to_pool",
            lambda *args, **kwargs: (_ for _ in ()).throw(
                WorkerCrashError("injected: pool is gone")
            ),
        )
        with pytest.raises(WorkerCrashError):
            service.submit(make_request())
        service.close()

    def test_repeated_crashes_trip_the_breaker(self, monkeypatch):
        """Three consecutive infra failures step the service down the
        ladder; subsequent requests run in-process and still succeed."""
        service = OptimizerService(
            make_small_schema(),
            config=TINY_CONFIG,
            backend="processes",
            cache_size=0,
            retry_policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=3, cooldown_s=1e9),
        )
        monkeypatch.setattr(
            service,
            "_submit_to_pool",
            lambda *args, **kwargs: (_ for _ in ()).throw(
                WorkerCrashError("injected: pool is gone")
            ),
        )
        for _ in range(3):
            assert service.submit(make_request()).degraded
        assert service.breaker.tripped
        assert service.breaker.backend == "threads"
        assert service.metrics.breaker_trips == 1
        # Tripped: requests bypass the (broken) pool and run locally.
        result = service.submit(make_request(alpha=1.3))
        assert not result.degraded
        assert result.plan is not None
        service.close()
