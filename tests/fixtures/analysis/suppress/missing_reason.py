"""LINT000 fixture: hollow suppressions must not silence anything."""


def cached_put(cache, key, result):
    cache.put(key, result)  # lint-allow: REP006


def typoed(cache, key, result):
    cache.put(key, result)  # lint-allow REP006 forgot the colon
