"""Suppression fixture: a reasoned lint-allow silences the finding."""


def seed_cache(cache, key, result):
    cache.put(key, result)  # lint-allow: REP006 warmup seeding of known-complete results


# lint-allow-file: REP003 this module documents the anti-pattern in prose only
