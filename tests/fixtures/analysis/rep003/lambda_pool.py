"""REP003 positive fixture: unpicklable callables into a process pool.

This is the bug class PR 9 hit: under the spawn start method, lambdas
and closures fail to pickle — sometimes at submit time, sometimes only
when a worker finally dequeues them.
"""

from concurrent.futures import ProcessPoolExecutor


def run_batch(items):
    executor = ProcessPoolExecutor(max_workers=2)
    # A lambda submitted to the worker pool: must be flagged.
    future = executor.submit(lambda item: item * 2, items[0])

    def scale(item):  # nested def -> closure, not picklable under spawn
        return item * 2

    futures = [executor.submit(scale, item) for item in items]
    return future, futures


def build_pool():
    # Lambda smuggled in through a constructor argument.
    return ProcessPoolExecutor(max_workers=1, initializer=lambda: None)
