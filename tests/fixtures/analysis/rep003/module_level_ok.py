"""REP003 negative fixture: module-level callables and thread pools."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def double(item):
    return item * 2


def run_batch(items):
    executor = ProcessPoolExecutor(max_workers=2)
    # Module-level function: picklable, fine.
    return [executor.submit(double, item) for item in items]


def run_threaded(items):
    tpool = ThreadPoolExecutor(max_workers=2)
    # Thread pools never pickle — closures are fine there, and the
    # rule keys on the receiver name, so ``tpool``/``pool`` pass.
    return [tpool.submit(lambda item=item: item * 2) for item in items]
