"""REP002 negative fixture: every exemption path the rule honors."""

import threading


class DisciplinedMetrics:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.responses = 0  # guarded-by: _lock
        self.latency_samples: list = []  # guarded-by: _lock

    def record_response(self, latency_ms: float) -> None:
        with self._lock:
            self.responses += 1
            self.latency_samples.append(latency_ms)

    def _percentile_locked(self, fraction: float) -> float:
        # Caller holds the lock: exempt via the _locked name suffix.
        if not self.latency_samples:
            return 0.0
        rank = int(fraction * (len(self.latency_samples) - 1))
        return sorted(self.latency_samples)[rank]

    def _tail_ms(self) -> float:  # holds-lock: _lock
        # Caller holds the lock: exempt via the def-line annotation.
        return self.latency_samples[-1] if self.latency_samples else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "responses": self.responses,
                "p95_ms": self._percentile_locked(0.95),
                "last_ms": self._tail_ms(),
            }
