"""REP002 positive fixture: the exact pre-PR-7 torn-snapshot race.

``record_response`` bumps the response counter under ``self._lock``
but appends the latency sample *outside* it — so a concurrent
``snapshot()`` can observe a response count that disagrees with the
histogram. This is the real ``ServingMetrics`` bug PR 7 fixed; the
linter must flag the two unlocked accesses.
"""

import threading


class TornMetrics:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.responses = 0  # guarded-by: _lock
        self.latency_samples: list = []  # guarded-by: _lock

    def record_response(self, latency_ms: float) -> None:
        with self._lock:
            self.responses += 1
        self.latency_samples.append(latency_ms)  # the race

    def snapshot(self) -> dict:
        with self._lock:
            count = self.responses
        return {"responses": count, "latency": list(self.latency_samples)}
