"""REP005 positive fixture: a field invisible to fingerprint().

``use_heuristic`` changes optimizer behaviour but is neither folded
into the fingerprint nor listed in ``_FINGERPRINT_EXCLUDED`` — two
semantically different requests would share one cache entry.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class RequestLike:
    query: str
    alpha: float = 1.5
    use_heuristic: bool = False
    tags: tuple = ()

    _FINGERPRINT_EXCLUDED = frozenset({"tags"})

    def fingerprint(self) -> str:
        return f"req[{self.query};{self.alpha}]"
