"""REP005 negative fixture: complete coverage, including transitively.

``alpha`` is consumed through the ``payload()`` helper — the rule's
reachability walk must follow ``self.payload()``.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class RequestLike:
    query: str
    alpha: float = 1.5
    tags: tuple = ()

    _FINGERPRINT_EXCLUDED = frozenset({"tags"})

    def payload(self) -> str:
        return f"{self.query};{self.alpha}"

    def fingerprint(self) -> str:
        return f"req[{self.payload()}]"
