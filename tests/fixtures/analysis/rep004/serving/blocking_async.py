"""REP004 positive fixture: blocking calls inside async def bodies."""

import time


class Handler:
    def __init__(self, service):
        self._service = service

    async def handle(self, request):
        time.sleep(0.1)  # blocks the event loop
        result = self._service.submit(request)  # whole optimization inline
        return result

    async def read_config(self, path):
        with open(path) as f:  # sync file I/O on the loop
            return f.read()
