"""REP004 negative fixture: the non-blocking counterparts."""

import asyncio
import time
from functools import partial


class Handler:
    def __init__(self, service):
        self._service = service

    async def handle(self, request):
        await asyncio.sleep(0.1)  # yields, fine
        loop = asyncio.get_running_loop()
        # The blocking submit routed through an executor: fine. The
        # partial only *references* submit, it does not call it here.
        return await loop.run_in_executor(
            None, partial(self._service.submit, request)
        )

    def retry_sync(self, request):
        # Synchronous helper: time.sleep outside async def is fine
        # (REP004) and this module is not REP001 territory.
        time.sleep(0.01)
        return self._service.submit(request)
