"""REP006 negative fixture: the canonical cache-purity guard."""


def finish(cache, key, result):
    if not result.timed_out and not result.deadline_hit:
        cache.put(key, result)


def finish_split(plan_cache, key, result, rerouted):
    # Nested ifs count: both names appear in enclosing conditions.
    if not result.timed_out:
        if not result.deadline_hit and not rerouted:
            plan_cache.put(key, result)
