"""REP006 positive fixture: degraded results reaching the plan cache."""


def finish(cache, key, result):
    # No guard at all: a timed-out partial frontier would be cached.
    cache.put(key, result)


def finish_half_guarded(cache, key, result):
    # Only half the contract: deadline_hit results still slip through.
    if not result.timed_out:
        cache.put(key, result)
