"""REP001 positive fixture: every ambient-entropy source the rule covers."""

import random
import time as _clock


def cost_with_noise(base: float) -> float:
    # Module-level random.* → shared unseeded global RNG.
    return base * (1.0 + random.random())


def jittered_estimate(rows: int) -> float:
    rng = random.Random()  # unseeded instance
    return rows * rng.uniform(0.9, 1.1)


def stamp_result(result: dict) -> dict:
    # Aliased import must still resolve: _clock.time -> time.time.
    result["at"] = _clock.time()
    return result


def sum_selectivities(predicates: set) -> float:
    total = 0.0
    for predicate in set(predicates):  # hash-order iteration
        total += predicate.selectivity
    return total
