"""REP001 negative fixture: the deterministic counterparts."""

import random
import time


def cost_with_noise(base: float, rng: random.Random) -> float:
    # A threaded-through seeded RNG instance is fine.
    return base * (1.0 + rng.random())


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)  # seeded


def deadline_from_budget(budget_s: float) -> float:
    return time.perf_counter() + budget_s  # lint-allow: REP001 deadline arithmetic only; never feeds plan choice


def sum_selectivities(predicates: set) -> float:
    total = 0.0
    for predicate in sorted(predicates):  # order pinned
        total += predicate
    return total
