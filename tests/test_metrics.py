"""Hypervolume and frontier-metric tests (with hypothesis properties)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.metrics import (
    MetricError,
    hypervolume,
    normalized_hypervolume,
)


class TestHypervolume2D:
    def test_single_point(self):
        # Point (1, 1) toward reference (3, 4): box 2 x 3.
        assert hypervolume([(1, 1)], (3, 4)) == pytest.approx(6.0)

    def test_two_staircase_points(self):
        # (1, 2) and (2, 1) toward (3, 3):
        # union = 2x1 + 1x2 - 1x1 = 3.
        assert hypervolume([(1, 2), (2, 1)], (3, 3)) == pytest.approx(3.0)

    def test_dominated_point_ignored(self):
        base = hypervolume([(1, 1)], (3, 3))
        with_dominated = hypervolume([(1, 1), (2, 2)], (3, 3))
        assert with_dominated == pytest.approx(base)

    def test_point_beyond_reference_clipped(self):
        assert hypervolume([(5, 5)], (3, 3)) == 0.0
        assert hypervolume([(1, 1), (5, 0)], (3, 3)) == pytest.approx(4.0)

    def test_empty_frontier(self):
        assert hypervolume([], (1, 1)) == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(MetricError):
            hypervolume([(1, 2, 3)], (1, 1))


class TestHypervolume3D:
    def test_single_point_box(self):
        assert hypervolume([(0, 0, 0)], (2, 3, 4)) == pytest.approx(24.0)

    def test_two_disjoint_contributions(self):
        # (0, 2, 2) and (2, 0, 0) toward (3, 3, 3).
        value = hypervolume([(0.0, 2.0, 2.0), (2.0, 0.0, 0.0)], (3, 3, 3))
        by_inclusion_exclusion = (3 * 1 * 1) + (1 * 3 * 3) - (1 * 1 * 1)
        assert value == pytest.approx(by_inclusion_exclusion)

    @given(
        st.lists(
            st.tuples(st.floats(0, 10), st.floats(0, 10), st.floats(0, 10)),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_monte_carlo_inclusion_exclusion(self, points):
        """3-D hypervolume equals inclusion-exclusion over point boxes."""
        reference = (10.0, 10.0, 10.0)
        value = hypervolume(points, reference)
        # Inclusion-exclusion over the boxes [p, reference].
        expected = 0.0
        for size in range(1, len(points) + 1):
            for subset in itertools.combinations(points, size):
                box = 1.0
                for dim in range(3):
                    corner = max(p[dim] for p in subset)
                    box *= max(reference[dim] - corner, 0.0)
                expected += (-1) ** (size + 1) * box
        assert value == pytest.approx(expected, rel=1e-9, abs=1e-9)


class TestHypervolumeProperties:
    @given(
        st.lists(st.tuples(st.floats(0, 10), st.floats(0, 10)),
                 min_size=1, max_size=12),
        st.tuples(st.floats(0, 10), st.floats(0, 10)),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_extra_points(self, points, extra):
        reference = (10.0, 10.0)
        base = hypervolume(points, reference)
        extended = hypervolume(points + [extra], reference)
        assert extended >= base - 1e-9

    @given(st.lists(st.tuples(st.floats(0, 10), st.floats(0, 10)),
                    min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_best_box(self, points):
        reference = (10.0, 10.0)
        ideal = (
            min(p[0] for p in points),
            min(p[1] for p in points),
        )
        bound = (reference[0] - ideal[0]) * (reference[1] - ideal[1])
        assert hypervolume(points, reference) <= bound + 1e-9


class TestNormalized:
    def test_single_point_is_one(self):
        assert normalized_hypervolume([(1, 1)], (3, 3)) == pytest.approx(1.0)

    def test_staircase_below_one(self):
        value = normalized_hypervolume([(1, 2), (2, 1)], (3, 3))
        assert 0.0 < value < 1.0

    def test_reference_must_dominate_ideal(self):
        with pytest.raises(MetricError):
            normalized_hypervolume([(5, 5)], (3, 3), ideal=(4, 4))

    def test_finer_rta_frontier_no_worse(self, tpch_optimizer):
        """Frontier quality across alpha: finer alpha >= coarser."""
        from repro import Objective, Preferences, tpch_query

        prefs = Preferences(
            objectives=(Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights=(1.0, 1.0),
        )
        config = tpch_optimizer.config.with_timeout(30.0)
        frontiers = {}
        for alpha in (2.0, 1.1):
            result = tpch_optimizer.optimize(
                tpch_query(3), prefs, algorithm="rta", alpha=alpha,
                config=config,
            )
            frontiers[alpha] = result.frontier_costs
        all_points = frontiers[2.0] + frontiers[1.1]
        reference = tuple(
            max(p[d] for p in all_points) * 1.01 + 1.0 for d in range(2)
        )
        ideal = tuple(min(p[d] for p in all_points) for d in range(2))
        coarse = normalized_hypervolume(frontiers[2.0], reference, ideal)
        fine = normalized_hypervolume(frontiers[1.1], reference, ideal)
        assert fine >= coarse - 0.05
