"""Calibration: measurement, significance gating, cost-model overlay."""

import pytest

from repro.cost import cardinality
from repro.cost.model import CostModel
from repro.plans.operators import ScanMethod, ScanSpec
from repro.query.predicate import FilterPredicate, JoinPredicate
from repro.workloads import (
    CalibratedStatistics,
    Calibrator,
    calibrate_family,
    q_error,
    tpch_chain_family,
)

from tests.conftest import make_chain_query, make_small_schema


class TestQError:
    def test_exact_estimate(self):
        assert q_error(0.3, 0.3) == 1.0

    def test_symmetric(self):
        assert q_error(0.1, 0.4) == q_error(0.4, 0.1) == pytest.approx(4.0)

    @pytest.mark.parametrize("est,act", [(0.0, 0.5), (0.5, 0.0), (-1.0, 0.5)])
    def test_nonpositive_is_infinite(self, est, act):
        assert q_error(est, act) == float("inf")


class TestCalibratedStatistics:
    def test_unknown_predicates_answer_none(self):
        overlay = CalibratedStatistics()
        f = FilterPredicate("users", "country", 0.3, "f")
        j = JoinPredicate("users", "user_id", "orders", "user_id")
        assert overlay.filter_selectivity(f) is None
        assert overlay.join_selectivity(j) is None
        assert len(overlay) == 0

    def test_recorded_values_round_trip(self):
        overlay = CalibratedStatistics()
        f = FilterPredicate("users", "country", 0.3, "f")
        j = JoinPredicate("users", "user_id", "orders", "user_id")
        overlay.record_filter(f, 0.12)
        overlay.record_join(j, 0.004)
        assert overlay.filter_selectivity(f) == 0.12
        assert overlay.join_selectivity(j) == 0.004
        assert len(overlay) == 2


class TestOverlayConsumption:
    """The overlay must actually steer cardinality estimation."""

    @pytest.fixture(scope="class")
    def schema(self):
        return make_small_schema()

    def test_filter_selectivity_prefers_overlay(self, schema):
        predicate = FilterPredicate("users", "country", 0.3, "f")
        overlay = CalibratedStatistics()
        overlay.record_filter(predicate, 0.05)
        assert cardinality.filter_selectivity((predicate,)) == 0.3
        assert cardinality.filter_selectivity((predicate,), overlay) == 0.05

    def test_join_selectivity_prefers_overlay(self, schema):
        query = make_chain_query(2)
        predicate = query.joins[0]
        overlay = CalibratedStatistics()
        overlay.record_join(predicate, 0.125)
        assert cardinality.join_predicate_selectivity(
            schema, query, predicate, overlay
        ) == 0.125

    def test_selectivity_cache_consults_overlay(self, schema):
        query = make_chain_query(2)
        overlay = CalibratedStatistics()
        overlay.record_join(query.joins[0], 0.125)
        cache = cardinality.SelectivityCache(schema, overlay=overlay)
        assert cache.join_selectivity(query, (query.joins[0],)) == 0.125

    def test_cost_model_scan_rows_follow_calibration(self, schema):
        query = make_chain_query(1)  # users with country filter 0.3
        overlay = CalibratedStatistics()
        overlay.record_filter(query.filters[0], 0.05)
        spec = ScanSpec(method=ScanMethod.SEQ)
        plain = CostModel(schema).scan_plan(query, "users", spec)
        calibrated = CostModel(schema, calibration=overlay).scan_plan(
            query, "users", spec
        )
        assert plain.rows == pytest.approx(200 * 0.3)
        assert calibrated.rows == pytest.approx(200 * 0.05)

    def test_partial_overlay_falls_back_to_catalog(self, schema):
        query = make_chain_query(2)  # users+orders, filters on both
        overlay = CalibratedStatistics()
        overlay.record_filter(query.filters[0], 0.05)
        model = CostModel(schema, calibration=overlay)
        spec = ScanSpec(method=ScanMethod.SEQ)
        orders = model.scan_plan(query, "orders", spec)
        # orders' filter was never calibrated -> nominal selectivity.
        assert orders.rows == pytest.approx(
            1000 * query.filters[1].selectivity
        )


class TestCalibratorOnFamily:
    @pytest.fixture(scope="class")
    def result(self):
        family = tpch_chain_family(extra_joins=3, seed=0)
        return calibrate_family(family, count=2, sample_size=256)

    def test_covers_all_distinct_predicates(self, result):
        # 2 draws x (3 filters + 3 joins), anchor filter and joins
        # deduplicate across draws: 1 + 2*2 + 3 = 8 reports.
        assert len(result.reports) == 8
        kinds = {r.kind for r in result.reports}
        assert kinds == {"filter", "join"}

    def test_key_joins_not_overridden(self, result):
        """FK joins: catalog 1/max(ndv) is exact for dense generated
        keys, so the sample measurement must not displace it."""
        joins = [r for r in result.reports if r.kind == "join"]
        assert joins and all(not r.overridden for r in joins)
        assert all(r.calibrated == r.catalog for r in joins)

    def test_low_ndv_filters_overridden(self, result):
        """o_orderstatus (ndv 3): the value-keyed Bernoulli realization
        sits far from the nominal fraction — calibration must catch it."""
        status = [
            r for r in result.reports if "o_orderstatus" in r.description
        ]
        assert status and all(r.overridden for r in status)
        for r in status:
            assert r.q_error_calibrated < r.q_error_catalog

    def test_calibration_never_hurts_in_aggregate(self, result):
        assert result.median_q_error(True) <= result.median_q_error(False)
        assert result.max_q_error(True) <= result.max_q_error(False)

    def test_overlay_contains_only_overridden(self, result):
        overridden = sum(r.overridden for r in result.reports)
        assert len(result.statistics) == overridden > 0


class TestCalibratorMeasurements:
    @pytest.fixture(scope="class")
    def calibrator(self):
        return Calibrator(make_small_schema(), sample_size=100)

    def test_certain_filter_passes_everything(self, calibrator):
        predicate = FilterPredicate("users", "country", 1.0, "f")
        rows = calibrator.generator.materialize("users")
        assert calibrator.measure_filter(predicate, rows) == 1.0

    def test_fk_join_matches_catalog_rule(self, calibrator):
        predicate = JoinPredicate("users", "user_id", "orders", "user_id")
        users = calibrator.generator.materialize("users")
        orders = calibrator.generator.materialize("orders")
        measured = calibrator.measure_join(predicate, users, orders)
        # Dense user keys: every order matches exactly one user.
        assert measured == pytest.approx(1.0 / 200)

    def test_sample_size_validated(self):
        with pytest.raises(Exception):
            Calibrator(make_small_schema(), sample_size=0)
