"""Golden tests for the ``repro.analysis`` invariant linter.

Each rule gets a positive fixture (must flag) and a negative fixture
(must stay silent) under ``tests/fixtures/analysis/``; the notable
committed failing fixtures are the pre-PR-7 torn-snapshot shape
(REP002) and the lambda-into-worker-pool shape (REP003). On top of the
per-rule goldens: suppression semantics (mandatory reasons, LINT000),
baseline round-trips, the JSON report schema, the CLI exit-code
contract (0 clean / 1 violations / 2 analyzer error), and the
zero-violation gate over ``src/repro`` + ``examples`` itself.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisReport,
    Analyzer,
    AnalyzerError,
    all_rules,
    load_baseline,
    write_baseline,
)
from repro.analysis.baseline import apply_baseline
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"


def run_lint(*paths: Path | str) -> AnalysisReport:
    return Analyzer().run([str(path) for path in paths])


def by_rule(report: AnalysisReport, rule_id: str):
    return [v for v in report.violations if v.rule == rule_id]


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
def test_all_six_rules_are_registered():
    ids = [rule.rule_id for rule in all_rules()]
    assert ids == sorted(ids)
    for expected in ("REP001", "REP002", "REP003",
                     "REP004", "REP005", "REP006"):
        assert expected in ids


# ----------------------------------------------------------------------
# REP001 determinism
# ----------------------------------------------------------------------
def test_rep001_flags_every_entropy_source():
    report = run_lint(FIXTURES / "rep001" / "cost" / "bad_determinism.py")
    findings = by_rule(report, "REP001")
    messages = "\n".join(v.message for v in findings)
    assert len(findings) == 4
    assert "random.random" in messages          # global RNG
    assert "random.Random()" in messages        # unseeded instance
    assert "time.time" in messages              # aliased _clock.time resolved
    assert "unordered set" in messages          # hash-order iteration
    assert report.violations == findings        # no other rule fires


def test_rep001_accepts_deterministic_counterparts():
    report = run_lint(FIXTURES / "rep001" / "cost" / "good_determinism.py")
    assert report.violations == []
    assert report.suppressed == 1  # the reasoned deadline clock read


def test_rep001_is_scoped_to_result_affecting_paths():
    # Identical entropy outside the scoped paths (no /cost/, /core/dp.py,
    # ... marker) is not REP001's business.
    report = run_lint(FIXTURES / "rep006" / "unguarded_put.py")
    assert by_rule(report, "REP001") == []


# ----------------------------------------------------------------------
# REP002 lock discipline
# ----------------------------------------------------------------------
def test_rep002_flags_the_pre_pr7_torn_snapshot_shape():
    report = run_lint(FIXTURES / "rep002" / "torn_snapshot.py")
    findings = by_rule(report, "REP002")
    # The unlocked append in record_response AND the unlocked read in
    # snapshot — both halves of the real ServingMetrics race.
    assert len(findings) == 2
    assert all("latency_samples" in v.message for v in findings)
    assert all("_lock" in v.message for v in findings)


def test_rep002_honors_every_exemption():
    # with self._lock, the _locked suffix, and # holds-lock annotations.
    report = run_lint(FIXTURES / "rep002" / "locked_ok.py")
    assert report.violations == []


# ----------------------------------------------------------------------
# REP003 spawn safety
# ----------------------------------------------------------------------
def test_rep003_flags_lambda_and_closure_submissions():
    report = run_lint(FIXTURES / "rep003" / "lambda_pool.py")
    findings = by_rule(report, "REP003")
    messages = "\n".join(v.message for v in findings)
    assert len(findings) == 3
    assert "lambda" in messages
    assert "scale" in messages       # the nested def by name
    assert "constructor" in messages  # initializer=lambda


def test_rep003_passes_module_level_functions_and_thread_pools():
    report = run_lint(FIXTURES / "rep003" / "module_level_ok.py")
    assert report.violations == []


# ----------------------------------------------------------------------
# REP004 async hygiene
# ----------------------------------------------------------------------
def test_rep004_flags_blocking_calls_in_async_bodies():
    report = run_lint(
        FIXTURES / "rep004" / "serving" / "blocking_async.py"
    )
    findings = by_rule(report, "REP004")
    messages = "\n".join(v.message for v in findings)
    assert len(findings) == 3
    assert "time.sleep" in messages
    assert "open" in messages
    assert "submit" in messages


def test_rep004_passes_awaited_and_executor_routed_work():
    report = run_lint(
        FIXTURES / "rep004" / "serving" / "nonblocking_ok.py"
    )
    assert report.violations == []


# ----------------------------------------------------------------------
# REP005 fingerprint completeness
# ----------------------------------------------------------------------
def test_rep005_flags_fields_invisible_to_fingerprint():
    report = run_lint(FIXTURES / "rep005" / "incomplete_fingerprint.py")
    findings = by_rule(report, "REP005")
    assert len(findings) == 1
    assert "use_heuristic" in findings[0].message
    assert "_FINGERPRINT_EXCLUDED" in findings[0].message


def test_rep005_follows_helper_methods_transitively():
    report = run_lint(FIXTURES / "rep005" / "complete_fingerprint.py")
    assert report.violations == []


# ----------------------------------------------------------------------
# REP006 cache purity
# ----------------------------------------------------------------------
def test_rep006_flags_unguarded_and_half_guarded_puts():
    report = run_lint(FIXTURES / "rep006" / "unguarded_put.py")
    findings = by_rule(report, "REP006")
    assert len(findings) == 2
    # Unguarded put misses both checks; half-guarded misses deadline_hit.
    assert any("deadline_hit and timed_out" in v.message for v in findings)
    assert any("deadline_hit checks" in v.message for v in findings)
    assert all(v.message.startswith("'cache.put") for v in findings)


def test_rep006_passes_the_canonical_guard_shapes():
    report = run_lint(FIXTURES / "rep006" / "guarded_put.py")
    assert report.violations == []


# ----------------------------------------------------------------------
# Suppressions: mandatory reasons, LINT000
# ----------------------------------------------------------------------
def test_hollow_suppressions_become_lint000_and_silence_nothing():
    report = run_lint(FIXTURES / "suppress" / "missing_reason.py")
    assert len(by_rule(report, "LINT000")) == 2  # no reason + typo'd form
    assert len(by_rule(report, "REP006")) == 2   # both findings survive
    assert report.suppressed == 0


def test_reasoned_suppressions_silence_their_findings():
    report = run_lint(FIXTURES / "suppress" / "with_reason.py")
    assert report.violations == []
    assert report.suppressed == 1


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_roundtrip_grandfathers_findings(tmp_path):
    target = FIXTURES / "rep006" / "unguarded_put.py"
    first = run_lint(target)
    assert len(first.violations) == 2
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, first.violations)

    second = apply_baseline(run_lint(target), load_baseline(baseline_file))
    assert second.violations == []
    assert second.baselined == 2


def test_committed_baseline_is_empty():
    # Policy: src/repro carries no grandfathered findings — everything
    # was fixed or suppressed inline with a reason.
    keys = load_baseline(REPO_ROOT / "lint-baseline.json")
    assert keys == set()


def test_malformed_baseline_is_an_analyzer_error(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("not json", encoding="utf-8")
    with pytest.raises(AnalyzerError):
        load_baseline(bad)


# ----------------------------------------------------------------------
# Analyzer error model + CLI exit codes
# ----------------------------------------------------------------------
def test_missing_path_raises_analyzer_error():
    with pytest.raises(AnalyzerError):
        run_lint(FIXTURES / "does-not-exist")


def test_syntax_error_raises_analyzer_error(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n", encoding="utf-8")
    with pytest.raises(AnalyzerError, match="cannot parse"):
        run_lint(broken)


def test_cli_exit_zero_on_clean_tree(capsys):
    code = cli_main(
        ["lint", str(FIXTURES / "rep006" / "guarded_put.py")]
    )
    assert code == 0
    assert "0 violations" in capsys.readouterr().out


def test_cli_exit_one_on_violations(capsys):
    code = cli_main(
        ["lint", str(FIXTURES / "rep006" / "unguarded_put.py")]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "REP006" in out
    assert "unguarded_put.py" in out


def test_cli_exit_two_on_analyzer_error(capsys):
    code = cli_main(["lint", str(FIXTURES / "no-such-dir")])
    assert code == 2
    captured = capsys.readouterr()
    assert "internal analyzer error" in captured.err
    assert "REP" not in captured.out  # no half-report on errors


def test_cli_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP001", "REP002", "REP003",
                    "REP004", "REP005", "REP006"):
        assert rule_id in out


def test_cli_write_baseline_then_gate_is_clean(tmp_path, capsys):
    target = str(FIXTURES / "rep006" / "unguarded_put.py")
    baseline = tmp_path / "baseline.json"
    assert cli_main(
        ["lint", target, "--write-baseline", str(baseline)]
    ) == 0
    capsys.readouterr()
    assert cli_main(["lint", target, "--baseline", str(baseline)]) == 0
    assert "2 baselined" in capsys.readouterr().out


# ----------------------------------------------------------------------
# End-to-end: JSON report schema
# ----------------------------------------------------------------------
def test_json_report_schema(capsys):
    code = cli_main([
        "lint", "--format", "json",
        str(FIXTURES / "rep001" / "cost" / "bad_determinism.py"),
    ])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["tool"] == "repro-lint"
    assert payload["files_checked"] == 1
    rule_ids = {rule["id"] for rule in payload["rules"]}
    assert {"REP001", "REP002", "REP003",
            "REP004", "REP005", "REP006"} <= rule_ids
    for rule in payload["rules"]:
        assert rule["name"] and rule["description"]
    assert payload["counts"]["violations"] == len(payload["violations"])
    for violation in payload["violations"]:
        assert violation["rule"] == "REP001"
        assert violation["path"].endswith("bad_determinism.py")
        assert isinstance(violation["line"], int) and violation["line"] > 0
        assert isinstance(violation["col"], int)
        assert violation["message"]


# ----------------------------------------------------------------------
# The gate itself: the shipped tree is clean
# ----------------------------------------------------------------------
def test_src_repro_and_examples_are_clean():
    report = run_lint(REPO_ROOT / "src" / "repro", REPO_ROOT / "examples")
    assert report.violations == [], "\n".join(
        v.render() for v in report.violations
    )
    assert report.files_checked > 90
