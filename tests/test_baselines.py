"""Baselines: weighted-sum scalar pruning and iterative DP (IDP)."""

import random

import pytest

from repro import Objective, Preferences, tpch_query
from repro.core.baselines import idp_moqo, weighted_sum_baseline
from repro.core.exa import exact_moqo
from repro.cost.model import CostModel
from repro.cost.vector import project, weighted_cost
from repro.exceptions import OptimizerError

from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema
from tests.helpers import enumerate_all_plans

OBJECTIVES = (
    Objective.TOTAL_TIME,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)


@pytest.fixture(scope="module")
def setup():
    schema = make_small_schema()
    model = CostModel(schema)
    query = make_chain_query(3)
    all_plans = enumerate_all_plans(query, model, TINY_CONFIG)
    return model, query, all_plans


class TestWeightedSumBaseline:
    def test_returns_a_plan_fast(self, setup):
        model, query, _ = setup
        prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 10.0))
        result = weighted_sum_baseline(query, model, prefs, TINY_CONFIG)
        assert result.plan is not None
        assert result.algorithm == "wsum"
        # Scalar pruning: one plan per table set.
        assert result.pareto_last_complete == 1

    def test_considers_fewer_plans_than_exa(self, setup):
        model, query, _ = setup
        prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 10.0))
        baseline = weighted_sum_baseline(query, model, prefs, TINY_CONFIG)
        exact = exact_moqo(query, model, prefs, TINY_CONFIG)
        assert baseline.plans_considered <= exact.plans_considered

    def test_no_optimality_guarantee_but_bounded_search(self, setup):
        """The baseline may be suboptimal (Example 1) — never better
        than the optimum, and on some weight draws strictly worse."""
        model, query, all_plans = setup
        worst_gap = 1.0
        for seed in range(12):
            rng = random.Random(seed)
            weights = tuple(rng.uniform(0.0, 1.0) for _ in OBJECTIVES)
            prefs = Preferences(objectives=OBJECTIVES, weights=weights)
            result = weighted_sum_baseline(query, model, prefs, TINY_CONFIG)
            optimum = min(
                weighted_cost(project(p.cost, prefs.indices), weights)
                for p in all_plans
            )
            if optimum > 0:
                ratio = result.weighted_cost / optimum
                assert ratio >= 1.0 - 1e-9
                worst_gap = max(worst_gap, ratio)
        # Informational: the gap exists in general; we only require the
        # baseline to never *beat* the brute-force optimum.
        assert worst_gap >= 1.0

    def test_rejects_bounds(self, setup):
        model, query, _ = setup
        prefs = Preferences(
            objectives=OBJECTIVES, weights=(1, 1, 1), bounds=(1e9, 1e9, 0.5)
        )
        with pytest.raises(OptimizerError):
            weighted_sum_baseline(query, model, prefs, TINY_CONFIG)


class TestIdp:
    def test_small_query_equals_rta_quality(self, setup):
        """With block_size >= |Q| the IDP is one plain DP run."""
        model, query, all_plans = setup
        prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 5.0))
        result = idp_moqo(query, model, prefs, alpha_u=1.5, block_size=4,
                          config=TINY_CONFIG)
        assert result.iterations == 1
        optimum = min(
            weighted_cost(project(p.cost, prefs.indices), prefs.weights)
            for p in all_plans
        )
        assert result.weighted_cost <= optimum * 1.5 * (1 + 1e-9)

    def test_blocked_run_commits_and_terminates(self, setup):
        model, query, _ = setup
        prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 5.0))
        result = idp_moqo(query, model, prefs, alpha_u=1.5, block_size=2,
                          config=TINY_CONFIG)
        assert result.iterations >= 2  # at least one commit round
        assert result.plan is not None
        # The final plan still covers all three tables of the query.
        base_aliases = {
            node.alias
            for node in result.plan.walk()
            if hasattr(node, "alias") and not node.alias.startswith("__idp")
        }
        assert base_aliases == set(query.aliases)

    def test_plan_cost_reasonable(self, setup):
        model, query, all_plans = setup
        prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 5.0))
        result = idp_moqo(query, model, prefs, alpha_u=1.5, block_size=2,
                          config=TINY_CONFIG)
        optimum = min(
            weighted_cost(project(p.cost, prefs.indices), prefs.weights)
            for p in all_plans
        )
        # Heuristic: no guarantee, but it must return a real plan whose
        # cost is at least the optimum.
        assert result.weighted_cost >= optimum * (1 - 1e-9)

    def test_rejects_tiny_block_size(self, setup):
        model, query, _ = setup
        prefs = Preferences(objectives=OBJECTIVES, weights=(1, 1, 1))
        with pytest.raises(OptimizerError):
            idp_moqo(query, model, prefs, block_size=1, config=TINY_CONFIG)

    def test_idp_on_tpch_q5(self, tpch_optimizer):
        """IDP handles a 6-table query with a small block size."""
        prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 10.0))
        result = tpch_optimizer.optimize(
            tpch_query(5), prefs, algorithm="idp", alpha=1.5,
            config=tpch_optimizer.config.with_timeout(30.0),
        )
        assert result.plan is not None
        assert result.iterations >= 2
        assert result.algorithm == "idp"


class TestFacadeIntegration:
    def test_wsum_via_facade(self, tpch_optimizer):
        prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 10.0))
        result = tpch_optimizer.optimize(
            tpch_query(3), prefs, algorithm="wsum"
        )
        assert result.algorithm == "wsum"
        assert result.plan is not None

    def test_idp_quality_versus_rta_on_tpch(self, tpch_optimizer):
        prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 10.0))
        config = tpch_optimizer.config.with_timeout(30.0)
        rta_result = tpch_optimizer.optimize(
            tpch_query(10), prefs, algorithm="rta", alpha=1.15, config=config
        )
        idp_result = tpch_optimizer.optimize(
            tpch_query(10), prefs, algorithm="idp", alpha=1.15, config=config
        )
        # The RTA's guarantee bounds how much better IDP could be; IDP
        # itself carries no such bound.
        assert idp_result.weighted_cost >= rta_result.weighted_cost / 1.15
