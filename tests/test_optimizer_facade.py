"""Facade tests: algorithm dispatch, multi-block queries, timeouts."""

import math

import pytest

from repro import (
    FAST_CONFIG,
    MultiObjectiveOptimizer,
    Objective,
    Preferences,
    tpch_query,
)
from repro.core.optimizer import combine_block_costs
from repro.exceptions import OptimizerError

OBJS = (
    Objective.TOTAL_TIME,
    Objective.CORES,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)


class TestCombineBlockCosts:
    def test_accumulative_sum(self):
        combined = combine_block_costs(
            [(10.0, 2.0, 100.0, 0.0), (5.0, 4.0, 200.0, 0.0)], OBJS
        )
        assert combined[0] == 15.0  # time adds

    def test_occupancy_max(self):
        combined = combine_block_costs(
            [(1.0, 2.0, 100.0, 0.0), (1.0, 4.0, 50.0, 0.0)], OBJS
        )
        assert combined[1] == 4.0  # cores: max
        assert combined[2] == 100.0  # buffer: max

    def test_tuple_loss_formula(self):
        combined = combine_block_costs(
            [(0, 1, 0, 0.5), (0, 1, 0, 0.5)], OBJS
        )
        assert combined[3] == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(OptimizerError):
            combine_block_costs([], OBJS)


class TestFacade:
    @pytest.fixture(scope="class")
    def prefs(self):
        return Preferences.from_maps(
            OBJS, weights={Objective.TOTAL_TIME: 1.0}
        )

    def test_unknown_algorithm(self, tpch_optimizer, prefs):
        with pytest.raises(OptimizerError):
            tpch_optimizer.optimize(tpch_query(1), prefs, algorithm="magic")

    def test_selinger_needs_one_objective(self, tpch_optimizer, prefs):
        with pytest.raises(OptimizerError):
            tpch_optimizer.optimize(tpch_query(1), prefs,
                                    algorithm="selinger")

    def test_accepts_plain_query_block(self, tpch_optimizer, prefs):
        block = tpch_query(3).main_block
        result = tpch_optimizer.optimize(block, prefs, algorithm="rta",
                                         alpha=2.0)
        assert result.plan is not None
        assert result.query_name == block.name

    def test_rta_strips_bounds(self, tpch_optimizer):
        bounded = Preferences.from_maps(
            OBJS,
            weights={Objective.TOTAL_TIME: 1.0},
            bounds={Objective.TUPLE_LOSS: 0.0},
        )
        # RTA ignores bounds (weighted MOQO); must not raise.
        result = tpch_optimizer.optimize(
            tpch_query(1), bounded, algorithm="rta", alpha=2.0
        )
        assert result.plan is not None

    def test_multi_block_aggregation(self, tpch_optimizer, prefs):
        query = tpch_query(4)  # orders + EXISTS(lineitem): two blocks
        result = tpch_optimizer.optimize(query, prefs, algorithm="rta",
                                         alpha=2.0)
        assert len(result.block_results) == 2
        block_costs = [r.plan_cost for r in result.block_results]
        assert result.plan_cost == combine_block_costs(block_costs, OBJS)
        assert result.plans_considered == sum(
            r.plans_considered for r in result.block_results
        )
        assert result.query_name == "tpch_q4"

    def test_multi_block_time_is_sum(self, tpch_optimizer, prefs):
        query = tpch_query(4)
        result = tpch_optimizer.optimize(query, prefs, algorithm="rta",
                                         alpha=2.0)
        block_times = [
            r.cost_of(Objective.TOTAL_TIME) for r in result.block_results
        ]
        assert result.cost_of(Objective.TOTAL_TIME) == pytest.approx(
            sum(block_times)
        )

    def test_all_algorithms_on_small_query(self, tpch_optimizer):
        prefs3 = Preferences.from_maps(
            (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights={Objective.TOTAL_TIME: 1.0},
        )
        for algorithm in ("exa", "rta", "ira"):
            result = tpch_optimizer.optimize(
                tpch_query(1), prefs3, algorithm=algorithm, alpha=1.5
            )
            assert result.plan is not None, algorithm
            assert result.algorithm == algorithm

    def test_selinger_via_facade(self, tpch_optimizer):
        prefs1 = Preferences(
            objectives=(Objective.TOTAL_TIME,), weights=(1.0,)
        )
        result = tpch_optimizer.optimize(
            tpch_query(1), prefs1, algorithm="selinger"
        )
        assert result.algorithm == "selinger"

    def test_timeout_produces_plan_and_flag(self, tpch):
        optimizer = MultiObjectiveOptimizer(
            tpch, config=FAST_CONFIG.with_timeout(0.05)
        )
        from repro.cost.objectives import ALL_OBJECTIVES

        prefs = Preferences(
            objectives=ALL_OBJECTIVES, weights=tuple([1.0] * 9)
        )
        result = optimizer.optimize(tpch_query(8), prefs, algorithm="exa")
        assert result.timed_out
        assert result.plan is not None  # fallback still yields a plan
        assert result.weighted_cost < math.inf

    def test_result_summary_and_accessors(self, tpch_optimizer):
        prefs = Preferences.from_maps(
            (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights={Objective.TOTAL_TIME: 1.0},
        )
        result = tpch_optimizer.optimize(
            tpch_query(1), prefs, algorithm="rta", alpha=1.5
        )
        text = result.summary()
        assert "rta" in text and "tpch_q1" in text
        assert result.cost_of(Objective.TOTAL_TIME) == result.plan_cost[0]
        assert result.objectives == prefs.objectives
