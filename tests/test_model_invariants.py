"""Cost-model invariants backing the paper's formal analysis.

Section 6.3 rests on three observations about the cost formulas; this
module validates them (and the additional monotonicity premise of the
strict pruning mode) directly against the implementation over the full
enumerated plan space of small queries:

* Observation 1 — single-table plan cost grows at most quadratically
  in the table cardinality;
* Observation 3 — per objective, plan costs are either zero or bounded
  below by an intrinsic constant;
* structural invariants — startup <= total time, tuple loss in [0, 1],
  cores >= 1, all costs non-negative and finite;
* strict-mode premise — join cost is monotone non-decreasing in each
  child's output cardinality (everything else fixed).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost.model import CostModel
from repro.cost.objectives import Objective
from repro.plans.operators import JoinMethod, JoinSpec, ScanMethod, ScanSpec
from repro.plans.plan import ScanPlan

from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema
from tests.helpers import enumerate_all_plans

_T = Objective.TOTAL_TIME.index
_S = Objective.STARTUP_TIME.index
_CORES = Objective.CORES.index
_L = Objective.TUPLE_LOSS.index


@pytest.fixture(scope="module")
def all_plans():
    schema = make_small_schema()
    model = CostModel(schema)
    query = make_chain_query(3)
    return enumerate_all_plans(query, model, TINY_CONFIG)


class TestStructuralInvariants:
    def test_costs_finite_and_nonnegative(self, all_plans):
        for plan in all_plans:
            for value in plan.cost:
                assert value >= 0.0
                assert math.isfinite(value)

    def test_startup_at_most_total(self, all_plans):
        for plan in all_plans:
            assert plan.cost[_S] <= plan.cost[_T] * (1 + 1e-9)

    def test_loss_in_unit_interval(self, all_plans):
        for plan in all_plans:
            assert 0.0 <= plan.cost[_L] <= 1.0
            assert plan.cost[_L] == plan.loss

    def test_cores_at_least_one(self, all_plans):
        for plan in all_plans:
            assert plan.cost[_CORES] >= 1.0

    def test_rows_consistent_with_loss(self, all_plans):
        """Cardinality is the lossless cardinality scaled by 1 - loss."""
        by_aliases = {}
        for plan in all_plans:
            by_aliases.setdefault(plan.aliases, []).append(plan)
        for plans in by_aliases.values():
            lossless = [p for p in plans if p.loss == 0.0]
            if not lossless:
                continue
            full_rows = lossless[0].rows
            for plan in plans:
                expected = full_rows * (1.0 - plan.loss)
                assert plan.rows == pytest.approx(expected, rel=1e-6)


class TestObservation1:
    """Scan cost grows at most quadratically in table cardinality."""

    @pytest.mark.parametrize("factor", [2.0, 5.0, 10.0])
    def test_seq_scan_growth(self, factor):
        schema = make_small_schema()
        grown = schema.scaled(factor)
        query = make_chain_query(1, with_filters=False)
        base_cost = CostModel(schema).scan_plan(
            query, "users", ScanSpec(method=ScanMethod.SEQ)
        ).cost
        grown_cost = CostModel(grown).scan_plan(
            query, "users", ScanSpec(method=ScanMethod.SEQ)
        ).cost
        for objective in Objective:
            i = objective.index
            if base_cost[i] > 0:
                assert grown_cost[i] <= base_cost[i] * factor**2 * (1 + 1e-6)


class TestObservation3:
    """Nonzero costs are bounded below by an intrinsic constant."""

    def test_tuple_loss_gap(self, all_plans):
        # With discrete sampling rates, the smallest nonzero loss is
        # bounded away from 0 (sampling one table at 2% loses >= 98%).
        nonzero = sorted(
            {p.cost[_L] for p in all_plans if p.cost[_L] > 0.0}
        )
        assert nonzero[0] >= 0.9  # TINY_CONFIG samples at 2%

    def test_time_lower_bound(self, all_plans):
        nonzero = [p.cost[_T] for p in all_plans if p.cost[_T] > 0]
        assert min(nonzero) > 1e-6


class TestMonotonicityInCardinality:
    """Strict-mode premise: join cost never decreases with child rows."""

    @pytest.fixture(scope="class")
    def context(self):
        schema = make_small_schema()
        model = CostModel(schema)
        query = make_chain_query(2)
        return schema, model, query

    def _leaf(self, context, alias, rows):
        schema, model, query = context
        table_name = query.table_name(alias)
        width = schema.table(table_name).tuple_width
        cost = (100.0, 10.0, 50.0, 20.0, 1.0, 0.0, 16384.0, 30.0, 0.0)
        return ScanPlan(alias, table_name, ScanSpec(method=ScanMethod.SEQ),
                        rows, width, cost, 0.0)

    @pytest.mark.parametrize(
        "method",
        [JoinMethod.HASH, JoinMethod.MERGE, JoinMethod.NESTED_LOOP],
    )
    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.tuples(st.floats(1, 1e5), st.floats(1, 1e5)),
        bump=st.floats(1.0, 10.0),
        dop=st.sampled_from([1, 2, 4]),
        side=st.sampled_from(["left", "right"]),
    )
    def test_generic_joins(self, context, method, rows, bump, dop, side):
        _, model, _ = context
        left_rows, right_rows = rows
        spec = JoinSpec(method, dop=dop)
        selectivity = 0.01

        def cost_for(lr, rr):
            left = self._leaf(context, "users", lr)
            right = self._leaf(context, "orders", rr)
            out_rows = lr * rr * selectivity
            return model.join_cost(spec, left, right, out_rows)

        base = cost_for(left_rows, right_rows)
        if side == "left":
            grown = cost_for(left_rows * bump, right_rows)
        else:
            grown = cost_for(left_rows, right_rows * bump)
        for b, g in zip(base, grown):
            assert g >= b * (1 - 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        left_rows=st.floats(1, 1e5),
        bump=st.floats(1.0, 10.0),
        dop=st.sampled_from([1, 2, 4]),
    )
    def test_index_nested_loop(self, context, left_rows, bump, dop):
        _, model, query = context
        probe = model.index_probe_plan(query, "orders", "orders_user_idx",
                                       "user_id")
        spec = JoinSpec(JoinMethod.INDEX_NESTED_LOOP, dop=dop)
        selectivity = 0.005

        def cost_for(lr):
            left = self._leaf(context, "users", lr)
            return model.join_cost(
                spec, left, probe, lr * probe.rows * selectivity
            )

        base = cost_for(left_rows)
        grown = cost_for(left_rows * bump)
        for b, g in zip(base, grown):
            assert g >= b * (1 - 1e-9)
