"""Multi-threaded hammer tests for metrics snapshot consistency.

Each test drives many writer threads against one metrics object while a
reader thread takes snapshots; the assertions are invariants that only
hold if every snapshot is internally consistent (taken under one lock
acquisition) — a torn read surfaces as a count that disagrees with the
derived statistics sampled in the same snapshot.
"""

from __future__ import annotations

import threading

from repro.core.instrumentation import (
    LatencyHistogram,
    RequestMetrics,
    ServiceMetrics,
)
from repro.serving.metrics import ServingMetrics

WRITERS = 8
PER_WRITER = 500


def hammer(worker, reader, writers: int = WRITERS):
    """Run writer threads against a concurrent reader; return reader data."""
    start = threading.Barrier(writers + 1)
    done = threading.Event()
    observations: list = []

    def write(index: int) -> None:
        start.wait()
        worker(index)

    def read() -> None:
        start.wait()
        while not done.is_set():
            observations.append(reader())
        observations.append(reader())  # one final, quiescent snapshot

    threads = [
        threading.Thread(target=write, args=(i,)) for i in range(writers)
    ]
    reader_thread = threading.Thread(target=read)
    for thread in threads:
        thread.start()
    reader_thread.start()
    for thread in threads:
        thread.join()
    done.set()
    reader_thread.join()
    return observations


class TestLatencyHistogramConsistency:
    def test_snapshot_is_never_torn(self):
        histogram = LatencyHistogram()

        def write(index: int) -> None:
            for step in range(PER_WRITER):
                histogram.observe(float(index * PER_WRITER + step))

        snapshots = hammer(write, histogram.snapshot)

        for snap in snapshots:
            count = snap["count"]
            if count == 0:
                assert snap["mean_ms"] == 0.0
                assert snap["max_ms"] == 0.0
                continue
            # Percentiles and max come from the same locked read as the
            # count — they can never exceed the largest value that could
            # have been observed by then, and are mutually ordered.
            assert 0.0 <= snap["p50_ms"] <= snap["p95_ms"] <= snap["p99_ms"]
            assert snap["p99_ms"] <= snap["max_ms"]
            assert 0.0 <= snap["mean_ms"] <= snap["max_ms"]
        final = snapshots[-1]
        assert final["count"] == WRITERS * PER_WRITER
        assert final["max_ms"] == float(WRITERS * PER_WRITER - 1)

    def test_percentile_matches_snapshot_when_quiet(self):
        histogram = LatencyHistogram()
        for value in range(100):
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert snap["p50_ms"] == histogram.percentile(0.50)
        assert snap["p99_ms"] == histogram.percentile(0.99)


class TestServiceMetricsConsistency:
    def test_hits_plus_misses_always_equal_requests(self):
        metrics = ServiceMetrics()

        def record(index: int) -> None:
            for step in range(PER_WRITER):
                metrics.record(
                    RequestMetrics(
                        fingerprint=f"f{index}",
                        query_name="q",
                        algorithm="rta",
                        tags=(),
                        cache_hit=(step % 2 == 0),
                        elapsed_ms=1.0,
                        timed_out=False,
                        phase_ms={"enumerate": 0.5, "kernel": 0.25},
                    )
                )

        snapshots = hammer(record, metrics.snapshot)

        for snap in snapshots:
            assert snap["cache_hits"] + snap["cache_misses"] == (
                snap["requests"]
            )
        final = snapshots[-1]
        assert final["requests"] == WRITERS * PER_WRITER
        expected_misses = WRITERS * (PER_WRITER // 2)
        assert final["cache_misses"] == expected_misses
        # Phase accumulation only happens on the cache-miss branch and
        # under the same lock as the counters.
        assert final["phase_ms"]["enumerate"] == expected_misses * 0.5
        assert final["phase_ms"]["kernel"] == expected_misses * 0.25


class TestServingMetricsConsistency:
    def test_responses_by_code_sum_to_latency_count(self):
        serving = ServingMetrics(ServiceMetrics())
        codes = ("ok", "shed", "error")

        def record(index: int) -> None:
            for step in range(PER_WRITER):
                serving.record_request()
                serving.record_response(codes[step % len(codes)], 1.0)

        snapshots = hammer(record, serving.snapshot)

        for snap in snapshots:
            by_code = snap["responses_by_code"]
            # Responses recorded so far can never exceed requests, and
            # the latency histogram (updated and read under the same
            # lock as the code counters) counts exactly the responses.
            assert sum(by_code.values()) <= snap["requests"]
            assert snap["latency"]["count"] == sum(by_code.values())
        final = snapshots[-1]
        assert final["requests"] == WRITERS * PER_WRITER
        assert sum(final["responses_by_code"].values()) == (
            WRITERS * PER_WRITER
        )
