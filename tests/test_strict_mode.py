"""Strict-mode pruning: guarantees for non-closed objective subsets.

Reproduction finding (DESIGN.md section 4a): the paper's cost-dominance
pruning assumes the recursive cost formulas only read the *selected*
objectives of the sub-plans. Two dependencies break that once the
paper's own plan-space extensions are in place:

* startup time reads the sub-plans' **total time** (e.g. a hash join's
  startup includes building the inner);
* every local cost term reads the sub-plans' **cardinality**, which the
  sampling scan makes plan-dependent.

Selecting an objective subset that is not closed under these
dependencies (e.g. {startup, disk, energy}) lets both the EXA and the
RTA prune plans whose hidden dimensions would have paid off higher in
the plan tree — observed factors of 17x beyond alpha on TPC-H Q5.
Strict mode augments the pruning key (total time when startup is
selected; output rows, compared exactly) and restores the guarantees.
"""

import random

import pytest

from repro import Objective, Preferences
from repro.core.dp import strict_closure
from repro.core.exa import exact_moqo
from repro.core.rta import rta
from repro.cost.model import CostModel
from repro.cost.vector import pareto_filter, project, weighted_cost

from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema
from tests.helpers import enumerate_all_plans

#: A non-closed objective selection: startup without total time, and no
#: tuple loss (so sampling-induced cardinality is invisible too).
OPEN_OBJECTIVES = (
    Objective.STARTUP_TIME,
    Objective.DISK_FOOTPRINT,
    Objective.ENERGY,
)


@pytest.fixture(scope="module")
def setup():
    schema = make_small_schema()
    model = CostModel(schema)
    query = make_chain_query(3)
    all_plans = enumerate_all_plans(query, model, TINY_CONFIG)
    return model, query, all_plans


class TestStrictClosure:
    def test_adds_total_for_startup(self):
        indices = (Objective.STARTUP_TIME.index, Objective.CORES.index)
        assert strict_closure(indices) == (Objective.TOTAL_TIME.index,)

    def test_no_addition_when_total_present(self):
        indices = (Objective.TOTAL_TIME.index, Objective.STARTUP_TIME.index)
        assert strict_closure(indices) == ()

    def test_no_addition_without_startup(self):
        indices = (Objective.TOTAL_TIME.index, Objective.ENERGY.index)
        assert strict_closure(indices) == ()


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_strict_exa_is_weighted_optimal_on_open_subset(setup, seed):
    model, query, all_plans = setup
    rng = random.Random(seed)
    weights = tuple(rng.uniform(0.1, 1.0) for _ in OPEN_OBJECTIVES)
    prefs = Preferences(objectives=OPEN_OBJECTIVES, weights=weights)
    result = exact_moqo(query, model, prefs, TINY_CONFIG, strict=True)
    optimum = min(
        weighted_cost(project(p.cost, prefs.indices), weights)
        for p in all_plans
    )
    assert result.weighted_cost == pytest.approx(optimum, rel=1e-9)


def test_strict_exa_frontier_covers_brute_force(setup):
    model, query, all_plans = setup
    prefs = Preferences(objectives=OPEN_OBJECTIVES, weights=(1.0, 1.0, 1.0))
    result = exact_moqo(query, model, prefs, TINY_CONFIG, strict=True)
    all_costs = [project(p.cost, prefs.indices) for p in all_plans]
    # Every true Pareto vector is matched or dominated by the strict
    # frontier (the frontier itself may be larger: it also keeps
    # cardinality-incomparable plans).
    from repro.cost.vector import dominates

    for pareto_vector in pareto_filter(all_costs):
        assert any(
            dominates(cost, pareto_vector)
            for cost in result.frontier_costs
        )


@pytest.mark.parametrize("alpha", [1.15, 1.5, 2.0])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_strict_rta_guarantee_on_open_subset(setup, alpha, seed):
    model, query, all_plans = setup
    rng = random.Random(seed)
    weights = tuple(rng.uniform(0.1, 1.0) for _ in OPEN_OBJECTIVES)
    prefs = Preferences(objectives=OPEN_OBJECTIVES, weights=weights)
    result = rta(query, model, prefs, alpha, TINY_CONFIG, strict=True)
    optimum = min(
        weighted_cost(project(p.cost, prefs.indices), weights)
        for p in all_plans
    )
    if optimum > 0:
        assert result.weighted_cost <= optimum * alpha * (1 + 1e-9)


def test_strict_frontier_at_least_as_large(setup):
    model, query, _ = setup
    prefs = Preferences(objectives=OPEN_OBJECTIVES, weights=(1, 1, 1))
    default = exact_moqo(query, model, prefs, TINY_CONFIG)
    strict = exact_moqo(query, model, prefs, TINY_CONFIG, strict=True)
    # Strict pruning is weaker, so it keeps at least as many plans and
    # its best weighted plan is at least as good.
    assert len(strict.frontier) >= len(default.frontier)
    assert strict.weighted_cost <= default.weighted_cost * (1 + 1e-12)


def test_tpch_q5_violation_and_strict_repair(tpch_optimizer):
    """The observed Q5 case: default RTA far beyond alpha, strict within."""
    from repro import tpch_query

    prefs = Preferences(
        objectives=OPEN_OBJECTIVES, weights=(0.253, 0.283, 0.755)
    )
    config = tpch_optimizer.config.with_timeout(60.0)
    exact = tpch_optimizer.optimize(
        tpch_query(5), prefs, algorithm="exa", config=config
    )
    default = tpch_optimizer.optimize(
        tpch_query(5), prefs, algorithm="rta", alpha=1.5, config=config
    )
    strict = tpch_optimizer.optimize(
        tpch_query(5), prefs, algorithm="rta", alpha=1.5, config=config,
        strict=True,
    )
    assert not exact.timed_out and not strict.timed_out
    # The default reproduces the paper's pruning — and its latent gap.
    assert default.weighted_cost > exact.weighted_cost * 1.5
    # Strict mode restores the guarantee (exact.weighted_cost upper-
    # bounds the true optimum since the exact run found that plan).
    assert strict.weighted_cost <= exact.weighted_cost * 1.5 * (1 + 1e-9)


def test_strict_mode_noop_on_closed_subsets(setup):
    """On closed objective sets strict mode only adds the rows key."""
    model, query, _ = setup
    closed = Preferences(
        objectives=(Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
        weights=(1.0, 5.0),
    )
    default = rta(query, model, closed, 1.5, TINY_CONFIG)
    strict = rta(query, model, closed, 1.5, TINY_CONFIG, strict=True)
    # Both respect the guarantee; strict may keep extra representatives.
    assert strict.weighted_cost <= default.weighted_cost * (1 + 1e-9)
