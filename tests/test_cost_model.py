"""Unit tests for the nine-objective cost model (Section 4 semantics)."""

import pytest

from repro.cost.model import CostModel
from repro.cost.objectives import Objective
from repro.cost.postgres_params import CostParams
from repro.exceptions import CostModelError
from repro.plans.operators import JoinMethod, JoinSpec, ScanMethod, ScanSpec

from tests.conftest import make_chain_query

_T = Objective.TOTAL_TIME.index
_S = Objective.STARTUP_TIME.index
_IO = Objective.IO_LOAD.index
_CPU = Objective.CPU_LOAD.index
_CORES = Objective.CORES.index
_DISK = Objective.DISK_FOOTPRINT.index
_BUF = Objective.BUFFER_FOOTPRINT.index
_E = Objective.ENERGY.index
_L = Objective.TUPLE_LOSS.index


@pytest.fixture(scope="module")
def model(small_schema_module):
    return CostModel(small_schema_module)


@pytest.fixture(scope="module")
def small_schema_module():
    from tests.conftest import make_small_schema

    return make_small_schema()


@pytest.fixture(scope="module")
def query():
    return make_chain_query(3)


class TestScans:
    def test_seq_scan_basics(self, model, query):
        plan = model.scan_plan(query, "items", ScanSpec(method=ScanMethod.SEQ))
        cost = plan.cost
        assert cost[_T] > 0
        assert cost[_S] == 0.0  # streaming scans produce immediately
        assert cost[_L] == 0.0
        assert cost[_CORES] == 1.0
        assert plan.rows == 4000

    def test_sample_scan_cheaper_but_lossy(self, model, query):
        seq = model.scan_plan(query, "items", ScanSpec(method=ScanMethod.SEQ))
        sample = model.scan_plan(
            query, "items",
            ScanSpec(method=ScanMethod.SAMPLE, sampling_rate=0.05),
        )
        assert sample.cost[_T] < seq.cost[_T]
        assert sample.cost[_IO] < seq.cost[_IO]
        assert sample.cost[_L] == pytest.approx(0.95)
        assert sample.rows == pytest.approx(seq.rows * 0.05)

    def test_sampling_rate_monotone(self, model, query):
        costs = [
            model.scan_plan(
                query, "items",
                ScanSpec(method=ScanMethod.SAMPLE, sampling_rate=rate),
            ).cost
            for rate in (0.01, 0.03, 0.05)
        ]
        assert costs[0][_T] < costs[1][_T] < costs[2][_T]
        assert costs[0][_L] > costs[1][_L] > costs[2][_L]

    def test_index_scan_selective_filter(self, model):
        query = make_chain_query(2)  # filter country=CH on users (0.3)
        # Index scan requires a filter on the index's leading column;
        # users has index on user_id but filter on country -> error.
        with pytest.raises(CostModelError):
            model.scan_plan(
                query, "users",
                ScanSpec(method=ScanMethod.INDEX, index_name="users_pk"),
            )

    def test_index_scan_has_startup(self, model, small_schema_module):
        from repro import FilterPredicate, Query, TableRef

        query = Query(
            "q",
            (TableRef("orders", "orders"),),
            filters=(FilterPredicate("orders", "order_id", 0.001),),
        )
        plan = model.scan_plan(
            query, "orders",
            ScanSpec(method=ScanMethod.INDEX, index_name="orders_pk"),
        )
        assert plan.cost[_S] > 0
        assert plan.cost[_L] == 0.0
        assert plan.rows == pytest.approx(1.0)

    def test_unknown_index_rejected(self, model, query):
        with pytest.raises(CostModelError):
            model.scan_plan(
                query, "orders",
                ScanSpec(method=ScanMethod.INDEX, index_name="nope"),
            )

    def test_probe_must_use_dedicated_constructor(self, model, query):
        with pytest.raises(CostModelError):
            model.scan_plan(
                query, "orders",
                ScanSpec(method=ScanMethod.INDEX_PROBE,
                         index_name="orders_user_idx"),
            )


class TestJoinSemantics:
    @pytest.fixture
    def operands(self, model, query):
        left = model.scan_plan(query, "users", ScanSpec(method=ScanMethod.SEQ))
        right = model.scan_plan(query, "orders",
                                ScanSpec(method=ScanMethod.SEQ))
        return left, right

    def _join(self, model, query, operands, method, dop=1):
        left, right = operands
        return model.join_plan(
            query, JoinSpec(method, dop=dop), left, right,
            query.joins_between(frozenset({"users"}), frozenset({"orders"})),
        )

    def test_parallel_inputs_use_max_time(self, model, query, operands):
        left, right = operands
        plan = self._join(model, query, operands, JoinMethod.HASH)
        local = plan.cost[_T] - max(left.cost[_T], right.cost[_T])
        assert local > 0  # join adds its own work on top of max()

    def test_hash_join_buffer_holds_inner(self, model, query, operands):
        _, right = operands
        plan = self._join(model, query, operands, JoinMethod.HASH)
        assert plan.cost[_BUF] >= right.output_bytes

    def test_merge_join_buffer_smaller_than_hash(self, model, query):
        # Large inner: hash table exceeds the sort's bounded work_mem.
        big_query = make_chain_query(3)
        left = model.scan_plan(big_query, "orders",
                               ScanSpec(method=ScanMethod.SEQ))
        right = model.scan_plan(big_query, "items",
                                ScanSpec(method=ScanMethod.SEQ))
        predicates = big_query.joins_between(
            frozenset({"orders"}), frozenset({"items"})
        )
        hash_plan = model.join_plan(
            big_query, JoinSpec(JoinMethod.HASH), left, right, predicates
        )
        merge_plan = model.join_plan(
            big_query, JoinSpec(JoinMethod.MERGE), left, right, predicates
        )
        # items is only ~270 KB here, below work_mem; scale the check to
        # what matters: hash buffer grows with the inner, merge's does not
        # beyond work_mem.
        assert hash_plan.cost[_BUF] >= right.output_bytes
        assert merge_plan.cost[_BUF] <= (
            left.cost[_BUF] + right.cost[_BUF]
            + 2 * model.params.work_mem
        )

    def test_dop_reduces_time_increases_cpu_energy(self, model, query,
                                                   operands):
        serial = self._join(model, query, operands, JoinMethod.HASH, dop=1)
        parallel = self._join(model, query, operands, JoinMethod.HASH, dop=4)
        assert parallel.cost[_T] < serial.cost[_T]
        assert parallel.cost[_CPU] > serial.cost[_CPU]
        assert parallel.cost[_E] > serial.cost[_E]
        assert parallel.cost[_CORES] >= 4

    def test_cores_sum_for_parallel_inputs(self, model, query, operands):
        plan = self._join(model, query, operands, JoinMethod.HASH, dop=1)
        # Both inputs are generated in parallel: 1 + 1 cores.
        assert plan.cost[_CORES] == 2.0

    def test_tuple_loss_combines(self, model, query):
        left = model.scan_plan(
            query, "users",
            ScanSpec(method=ScanMethod.SAMPLE, sampling_rate=0.5),
        )
        right = model.scan_plan(
            query, "orders",
            ScanSpec(method=ScanMethod.SAMPLE, sampling_rate=0.5),
        )
        plan = model.join_plan(
            query, JoinSpec(JoinMethod.HASH), left, right,
            query.joins_between(frozenset({"users"}), frozenset({"orders"})),
        )
        # 1 - (1-0.5)(1-0.5) = 0.75.
        assert plan.cost[_L] == pytest.approx(0.75)
        assert plan.loss == pytest.approx(0.75)

    def test_index_nl_small_startup(self, model, query, operands):
        left, _ = operands
        probe = model.index_probe_plan(query, "orders", "orders_user_idx",
                                       "user_id")
        plan = model.join_plan(
            query, JoinSpec(JoinMethod.INDEX_NESTED_LOOP), left, probe,
            query.joins_between(frozenset({"users"}), frozenset({"orders"})),
        )
        hash_plan = self._join(model, query, operands, JoinMethod.HASH)
        assert plan.cost[_S] < hash_plan.cost[_S]
        assert plan.cost[_BUF] < hash_plan.cost[_BUF]

    def test_index_nl_requires_probe_inner(self, model, query, operands):
        left, right = operands
        with pytest.raises(CostModelError):
            model.join_plan(
                query, JoinSpec(JoinMethod.INDEX_NESTED_LOOP), left, right,
                query.joins_between(
                    frozenset({"users"}), frozenset({"orders"})
                ),
            )

    def test_output_cardinality_consistent_across_methods(
        self, model, query, operands
    ):
        plans = [
            self._join(model, query, operands, method)
            for method in (JoinMethod.HASH, JoinMethod.MERGE,
                           JoinMethod.NESTED_LOOP)
        ]
        rows = {round(p.rows, 6) for p in plans}
        assert len(rows) == 1

    def test_nested_loop_quadratic_cpu(self, model, query, operands):
        nl = self._join(model, query, operands, JoinMethod.NESTED_LOOP)
        hash_plan = self._join(model, query, operands, JoinMethod.HASH)
        assert nl.cost[_CPU] > hash_plan.cost[_CPU]


class TestCostParams:
    def test_rejects_nonpositive_costs(self):
        with pytest.raises(ValueError):
            CostParams(seq_page_cost=0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            CostParams(parallel_cpu_overhead=-0.1)

    def test_rejects_zero_work_mem(self):
        with pytest.raises(ValueError):
            CostParams(work_mem=0)

    def test_custom_params_shift_costs(self, small_schema_module, query):
        cheap_io = CostModel(
            small_schema_module, CostParams(seq_page_cost=0.1)
        )
        default = CostModel(small_schema_module)
        spec = ScanSpec(method=ScanMethod.SEQ)
        assert (
            cheap_io.scan_plan(query, "items", spec).cost[_T]
            < default.scan_plan(query, "items", spec).cost[_T]
        )
