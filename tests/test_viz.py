"""Tests for ASCII visualization and the CLI."""

import pytest

from repro import Objective, Preferences, tpch_query
from repro.cli import build_parser, main
from repro.viz import (
    VisualizationError,
    frontier_scatter,
    frontier_table,
    scatter,
)


def _grid_markers(plot: str, marker: str = "o") -> int:
    """Count markers inside the plot grid (axis labels contain letters)."""
    return sum(
        line.count(marker)
        for line in plot.splitlines()
        if line.startswith("  |")
    )


class TestScatter:
    def test_marks_points(self):
        plot = scatter([1, 2, 3], [3, 2, 1])
        assert _grid_markers(plot) == 3
        assert "3 points" in plot

    def test_highlight(self):
        plot = scatter([1, 2], [1, 2], highlight=(1, 1))
        assert "*" in plot

    def test_log_axes_label(self):
        plot = scatter([1, 10, 100], [1, 1, 2], log_x=True, log_y=True)
        assert "(log)" in plot

    def test_single_point_degenerate(self):
        plot = scatter([5.0], [7.0])
        assert _grid_markers(plot) == 1

    def test_rejects_empty(self):
        with pytest.raises(VisualizationError):
            scatter([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(VisualizationError):
            scatter([1], [1, 2])


class TestFrontierViews:
    @pytest.fixture(scope="class")
    def result(self, tpch_optimizer):
        prefs = Preferences.from_maps(
            (Objective.TOTAL_TIME, Objective.BUFFER_FOOTPRINT,
             Objective.TUPLE_LOSS),
            weights={Objective.TOTAL_TIME: 1.0},
        )
        return tpch_optimizer.optimize(
            tpch_query(3), prefs, algorithm="rta", alpha=1.5
        )

    def test_frontier_scatter(self, result):
        plot = frontier_scatter(
            result, Objective.BUFFER_FOOTPRINT, Objective.TOTAL_TIME
        )
        assert "total_time vs buffer_footprint" in plot
        assert "*" in plot  # chosen plan marked

    def test_rejects_unselected_objective(self, result):
        with pytest.raises(VisualizationError):
            frontier_scatter(result, Objective.ENERGY,
                             Objective.TOTAL_TIME)

    def test_frontier_table(self, result):
        table = frontier_table(result)
        assert "total_time" in table
        assert len(table.splitlines()) == 1 + len(result.frontier)

    def test_frontier_table_limit(self, result):
        if len(result.frontier) > 1:
            table = frontier_table(result, limit=1)
            assert "more)" in table


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["--query", "3", "--objectives", "total_time"]
        )
        assert args.algorithm == "rta"
        assert args.alpha == 1.5

    def test_end_to_end(self, capsys):
        exit_code = main([
            "--query", "1",
            "--objectives", "total_time,tuple_loss",
            "--weight", "total_time=1",
            "--weight", "tuple_loss=100",
            "--algorithm", "rta",
            "--fast",
            "--frontier",
            "--plot", "tuple_loss:total_time",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "rta on tpch_q1" in captured.out
        assert "approximate Pareto frontier" in captured.out
        assert "total_time vs tuple_loss" in captured.out

    def test_bounded_run(self, capsys):
        exit_code = main([
            "--query", "1",
            "--objectives", "total_time,tuple_loss",
            "--weight", "total_time=1",
            "--bound", "tuple_loss=0",
            "--algorithm", "ira",
            "--fast",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ira on tpch_q1" in captured.out
        assert "tuple_loss" in captured.out

    def test_bad_objective_name(self):
        with pytest.raises(SystemExit):
            main(["--query", "1", "--objectives", "latency"])

    def test_malformed_weight(self):
        with pytest.raises(SystemExit):
            main([
                "--query", "1",
                "--objectives", "total_time",
                "--weight", "total_time",
            ])

    def test_bad_query_number(self):
        with pytest.raises(SystemExit):
            main(["--query", "99", "--objectives", "total_time"])
