"""Property-based tests for the principle of near-optimality (PONO).

Section 6.1: if the cost of the sub-plans of a plan increases by at
most factor alpha in every objective, the cost of the plan increases by
at most factor alpha in every objective. The RTA's guarantee (Theorem 3)
rests entirely on this property holding for the cost model, so we test
it directly against the implementation: for random pairs of sub-plans
where one alpha-approximately dominates the other, the combined plans
must preserve the relation, for every join operator and every objective.

Cardinality note: the PONO is a statement about cost vectors with the
operand *cardinalities* held fixed (they are determined by the table
set, modulo sampling). The test therefore replaces sub-plan costs while
keeping rows/width identical — exactly the substitution in Definition 7.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost.model import CostModel
from repro.cost.vector import approx_dominates
from repro.plans.operators import JoinMethod, JoinSpec, ScanMethod, ScanSpec
from repro.plans.plan import ProbeInfo, ScanPlan

from tests.conftest import make_chain_query, make_small_schema

SCHEMA = make_small_schema()
MODEL = CostModel(SCHEMA)
QUERY = make_chain_query(2)

# A plausible cost-vector strategy: non-negative, loss in [0, 1],
# startup <= total time, cores >= 1.
def cost_vectors():
    base = st.tuples(*([st.floats(0.0, 1e7, allow_nan=False)] * 8))
    loss = st.floats(0.0, 1.0)

    def build(values, loss_value):
        total, startup, io, cpu, cores, disk, buffer_, energy = values
        startup = min(startup, total)
        cores = 1.0 + cores % 8.0
        return (total, startup, io, cpu, cores, disk, buffer_, energy,
                loss_value)

    return st.builds(build, base, loss)


def scaled_vector(cost, factors):
    """Per-objective inflation by factors in [1, alpha]."""
    scaled = tuple(c * f for c, f in zip(cost, factors))
    # Loss must stay in [0, 1].
    return scaled[:8] + (min(scaled[8], 1.0),)


def make_leaf(alias: str, rows: float, cost) -> ScanPlan:
    table_name = QUERY.table_name(alias)
    width = SCHEMA.table(table_name).tuple_width
    return ScanPlan(
        alias, table_name, ScanSpec(method=ScanMethod.SEQ),
        rows, width, cost, cost[8],
    )


GENERIC_SPECS = [
    JoinSpec(JoinMethod.HASH, dop=1),
    JoinSpec(JoinMethod.HASH, dop=4),
    JoinSpec(JoinMethod.MERGE, dop=1),
    JoinSpec(JoinMethod.MERGE, dop=2),
    JoinSpec(JoinMethod.NESTED_LOOP, dop=1),
    JoinSpec(JoinMethod.NESTED_LOOP, dop=3),
]


@pytest.mark.parametrize("spec", GENERIC_SPECS, ids=lambda s: s.label)
@settings(max_examples=60, deadline=None)
@given(
    left_cost=cost_vectors(),
    right_cost=cost_vectors(),
    factor_seed=st.tuples(*([st.floats(1.0, 1.0e0 + 1.0)] * 9)),
    alpha=st.floats(1.0, 3.0),
    rows=st.tuples(st.floats(1, 1e4), st.floats(1, 1e4)),
)
def test_pono_generic_joins(spec, left_cost, right_cost, factor_seed,
                            alpha, rows):
    """c(p*_L) <=_alpha c(p_L), c(p*_R) <=_alpha c(p_R)
    => c(P*) <=_alpha c(P)."""
    left_rows, right_rows = rows
    factors = tuple(1.0 + (f - 1.0) * (alpha - 1.0) for f in factor_seed)
    worse_left = scaled_vector(left_cost, factors)
    worse_right = scaled_vector(right_cost, factors)

    base_left = make_leaf("users", left_rows, left_cost)
    base_right = make_leaf("orders", right_rows, right_cost)
    bad_left = make_leaf("users", left_rows, worse_left)
    bad_right = make_leaf("orders", right_rows, worse_right)

    out_rows = left_rows * right_rows * 0.01
    good = MODEL.join_cost(spec, base_left, base_right, out_rows)
    bad = MODEL.join_cost(spec, bad_left, bad_right, out_rows)
    # The original plans alpha-dominate the degraded ones by
    # construction, so the combined plan must too (with slack for
    # floating-point rounding).
    assert approx_dominates(good, bad, 1.0 + 1e-12)
    assert approx_dominates(bad, good, alpha * (1 + 1e-9))


@settings(max_examples=60, deadline=None)
@given(
    left_cost=cost_vectors(),
    factor_seed=st.tuples(*([st.floats(1.0, 2.0)] * 9)),
    alpha=st.floats(1.0, 3.0),
    left_rows=st.floats(1, 1e4),
    dop=st.sampled_from([1, 2, 4]),
)
def test_pono_index_nested_loop(left_cost, factor_seed, alpha, left_rows,
                                dop):
    """Index-nested-loop joins preserve the PONO in the outer operand."""
    factors = tuple(1.0 + (f - 1.0) * (alpha - 1.0) for f in factor_seed)
    worse_left = scaled_vector(left_cost, factors)
    probe = MODEL.index_probe_plan(QUERY, "orders", "orders_user_idx",
                                   "user_id")
    spec = JoinSpec(JoinMethod.INDEX_NESTED_LOOP, dop=dop)
    out_rows = left_rows * probe.rows * 0.005

    good = MODEL.join_cost(spec, make_leaf("users", left_rows, left_cost),
                           probe, out_rows)
    bad = MODEL.join_cost(
        spec, make_leaf("users", left_rows, worse_left), probe, out_rows
    )
    assert approx_dominates(bad, good, alpha * (1 + 1e-9))


@given(
    a=st.floats(0.0, 1.0),
    b=st.floats(0.0, 1.0),
    alpha=st.floats(1.0, 5.0),
)
def test_pono_tuple_loss_formula(a, b, alpha):
    """Section 6.1's argument for F(a, b) = 1 - (1-a)(1-b).

    F(alpha*a, alpha*b) <= alpha * F(a, b) for a, b in [0, 1]
    (the inflated inputs are clamped to the domain).
    """
    def loss(x, y):
        return 1.0 - (1.0 - x) * (1.0 - y)

    inflated = loss(min(alpha * a, 1.0), min(alpha * b, 1.0))
    assert inflated <= alpha * loss(a, b) + 1e-12


@given(
    values=st.tuples(st.floats(0, 1e6), st.floats(0, 1e6)),
    alpha=st.floats(1.0, 5.0),
    const=st.floats(0, 1e3),
)
def test_pono_building_blocks(values, alpha, const):
    """F in {sum, max, min, +const, *const} satisfies
    F(alpha*a, alpha*b) <= alpha*F(a, b)."""
    a, b = values
    tolerance = 1e-9 * (1 + a + b + const)
    assert alpha * a + alpha * b <= alpha * (a + b) + tolerance
    assert max(alpha * a, alpha * b) <= alpha * max(a, b) + tolerance
    assert min(alpha * a, alpha * b) <= alpha * min(a, b) + tolerance
    assert alpha * a + const <= alpha * (a + const) + tolerance
    assert const * (alpha * a) <= alpha * (const * a) + tolerance
