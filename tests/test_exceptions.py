"""Exception hierarchy contract."""

import pytest

from repro.exceptions import (
    CatalogError,
    CostModelError,
    InvalidPrecisionError,
    OptimizerError,
    QueryModelError,
    ReproError,
    UnknownColumnError,
    UnknownTableError,
)


def test_single_base_class():
    for error_type in (
        CatalogError,
        CostModelError,
        InvalidPrecisionError,
        OptimizerError,
        QueryModelError,
        UnknownColumnError,
        UnknownTableError,
    ):
        assert issubclass(error_type, ReproError)


def test_unknown_table_carries_name():
    error = UnknownTableError("ghosts")
    assert error.table_name == "ghosts"
    assert "ghosts" in str(error)


def test_unknown_column_carries_names():
    error = UnknownColumnError("users", "ghost_column")
    assert error.table_name == "users"
    assert error.column_name == "ghost_column"
    assert "users" in str(error) and "ghost_column" in str(error)


def test_invalid_precision_carries_alpha():
    error = InvalidPrecisionError(0.5)
    assert error.alpha == 0.5
    assert "0.5" in str(error)
    assert isinstance(error, OptimizerError)


def test_catalog_errors_catchable_as_base():
    with pytest.raises(ReproError):
        raise UnknownTableError("t")
