"""Unit tests for the join graph: masks, connectivity, splits."""

import pytest

from repro import JoinPredicate, Query, TableRef, tpch_query
from repro.query.join_graph import JoinGraph


def make_graph(num_tables, edges):
    """Graph over aliases t0..t{n-1} with the given edge list."""
    refs = tuple(TableRef(f"t{i}", "users") for i in range(num_tables))
    joins = tuple(
        JoinPredicate(f"t{a}", "user_id", f"t{b}", "user_id")
        for a, b in edges
    )
    return JoinGraph(Query("g", refs, joins=joins))


class TestMasks:
    def test_roundtrip(self):
        graph = make_graph(3, [(0, 1), (1, 2)])
        mask = graph.mask_of(("t0", "t2"))
        assert graph.aliases_of(mask) == frozenset({"t0", "t2"})

    def test_full_mask(self):
        assert make_graph(4, []).full_mask == 0b1111


class TestConnectivity:
    def test_chain(self):
        graph = make_graph(3, [(0, 1), (1, 2)])
        assert graph.is_connected(0b111)
        assert graph.is_connected(0b011)
        assert not graph.is_connected(0b101)  # t0, t2 without middle
        assert graph.is_connected(0b001)

    def test_empty_mask_not_connected(self):
        assert not make_graph(2, [(0, 1)]).is_connected(0)

    def test_neighbors(self):
        graph = make_graph(3, [(0, 1), (1, 2)])
        assert graph.neighbors(0b001) == 0b010
        assert graph.neighbors(0b010) == 0b101

    def test_connects(self):
        graph = make_graph(3, [(0, 1), (1, 2)])
        assert graph.connects(0b001, 0b010)
        assert not graph.connects(0b001, 0b100)


class TestSplits:
    def test_chain_splits_avoid_cartesian(self):
        graph = make_graph(3, [(0, 1), (1, 2)])
        splits = list(graph.splits(0b111))
        # {t0}|{t1,t2} and {t0,t1}|{t2} and {t0,t2}|{t1} are all
        # predicate-connected; cartesian split does not exist for a chain.
        assert len(splits) == 3
        for left, right in splits:
            assert left | right == 0b111
            assert left & right == 0
            assert graph.connects(left, right)

    def test_disconnected_pair_falls_back_to_cartesian(self):
        graph = make_graph(2, [])
        splits = list(graph.splits(0b11))
        assert splits == [(0b01, 0b10)]

    def test_each_unordered_split_once(self):
        graph = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        splits = list(graph.splits(0b1111))
        seen = {frozenset((l, r)) for l, r in splits}
        assert len(seen) == len(splits)

    def test_singleton_has_no_splits(self):
        graph = make_graph(2, [(0, 1)])
        assert list(graph.splits(0b01)) == []


class TestConnectedSubsets:
    def test_chain_excludes_gaps(self):
        graph = make_graph(3, [(0, 1), (1, 2)])
        subsets = graph.connected_subsets()
        assert 0b101 not in subsets
        assert subsets[-1] == 0b111
        # Ascending cardinality.
        cardinalities = [m.bit_count() for m in subsets]
        assert cardinalities == sorted(cardinalities)

    def test_disconnected_graph_keeps_all_subsets(self):
        graph = make_graph(2, [])
        assert graph.connected_subsets() == [0b01, 0b10, 0b11]

    def test_clique_has_all_subsets(self):
        graph = make_graph(3, [(0, 1), (1, 2), (0, 2)])
        assert len(graph.connected_subsets()) == 7


class TestPredicatesBetween:
    def test_finds_crossing_predicates(self):
        graph = make_graph(3, [(0, 1), (1, 2)])
        predicates = graph.predicates_between(0b001, 0b110)
        assert len(predicates) == 1
        predicates = graph.predicates_between(0b011, 0b100)
        assert len(predicates) == 1

    def test_no_predicates_within_side(self):
        graph = make_graph(3, [(0, 1), (1, 2)])
        assert graph.predicates_between(0b001, 0b100) == ()

    def test_q9_multiple_predicates_between(self):
        block = tpch_query(9).main_block
        graph = JoinGraph(block)
        lineitem = graph.mask_of(("lineitem",))
        partsupp = graph.mask_of(("partsupp",))
        # ps_suppkey = l_suppkey AND ps_partkey = l_partkey.
        assert len(graph.predicates_between(partsupp, lineitem)) == 2


class TestCyclicQueries:
    def test_q5_cycle_connected(self):
        block = tpch_query(5).main_block
        graph = JoinGraph(block)
        assert graph.is_connected(graph.full_mask)
        # Splits of the full set all stay predicate-connected.
        for left, right in graph.splits(graph.full_mask):
            assert graph.connects(left, right)
