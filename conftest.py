"""Repository-level pytest configuration.

Defines the ``--workers`` option used by the parallel-backend tests and
benchmarks: the number of worker processes to exercise. CI runs the
parallel suite with ``--workers 2`` under a hard timeout so a hung
worker pool fails the job fast instead of stalling it.
"""

from __future__ import annotations

import pytest


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "parallel: tests that spin up real worker processes "
        "(selectable with -m parallel)",
    )
    config.addinivalue_line(
        "markers",
        "benchmark: paper-figure benchmarks under benchmarks/ "
        "(minutes, not seconds; run with -m benchmark — "
        "`pytest -q tests` stays fast without them)",
    )


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=2,
        help="worker-process count for parallel backend tests (default 2)",
    )


@pytest.fixture(scope="session")
def parallel_workers(request: pytest.FixtureRequest) -> int:
    """Worker-process count selected via ``--workers``."""
    workers = request.config.getoption("--workers")
    if workers < 1:
        raise pytest.UsageError("--workers must be >= 1")
    return workers
