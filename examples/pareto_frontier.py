"""Figure 4 of the paper: approximate Pareto frontiers for TPC-H Q5.

All of the paper's MOQO algorithms produce an approximate Pareto
frontier as a by-product of optimization; the prototype visualizes 2-D
and 3-D projections so users can pick sensible weights and bounds. This
example regenerates the Figure 4 data: the 3-D frontier over tuple
loss, buffer footprint and total time, once coarse-grained (alpha = 2)
and once fine-grained (alpha = 1.25) — the finer precision yields more
frontier points.

Run:  python examples/pareto_frontier.py
"""

from repro.bench.experiments import figure4_experiment


def main() -> None:
    frontiers = figure4_experiment(alphas=(2.0, 1.25))
    for alpha, points in frontiers.items():
        grain = "coarse" if alpha >= 2 else "fine"
        print(f"=== alpha = {alpha} ({grain}-grained): "
              f"{len(points)} frontier plans ===")
        print(f"{'tuple loss':>12s}  {'buffer (MB)':>12s}  {'total time':>14s}")
        for loss, buffer_bytes, total_time in points[:30]:
            print(f"{loss:12.3f}  {buffer_bytes / 1048576.0:12.2f}  "
                  f"{total_time:14.4g}")
        if len(points) > 30:
            print(f"... ({len(points) - 30} more)")
        print()
    coarse = len(frontiers[2.0])
    fine = len(frontiers[1.25])
    print(f"fine-grained frontier has {fine} plans vs {coarse} "
          f"coarse-grained — refining alpha reveals more tradeoffs.")


if __name__ == "__main__":
    main()
