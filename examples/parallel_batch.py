"""Scaling out: a 200-query batch on the process-pool backend.

The cloud-provider scenario of the paper (Scenario 1) ends with many
users submitting many optimization requests at once. This example
generates a 200-query synthetic workload with the paper's workload
generator (random objective subsets, random weights — Section 8) and
pushes it through ``optimize_many(backend="processes")``:

* worker processes are spawned once and stay warm — each holds its own
  algorithm registry, cost model and plan cache;
* repeated requests are sharded to the same worker by fingerprint, so
  they hit that worker's cache instead of being optimized twice;
* per-request metrics ship back to the parent, so the service metrics
  look exactly like the single-process backend's.

Run:  python examples/parallel_batch.py
"""

import time

from repro import OptimizerService, WorkloadGenerator, tpch_schema
from repro.config import OptimizerConfig
from repro.parallel.pool import default_worker_count

#: Reduced operator space keeps the example snappy on laptops.
CONFIG = OptimizerConfig(dop_values=(1, 2), sampling_rates=(0.01, 0.05))

#: Queries of the batch: a mix of light and heavy TPC-H shapes.
QUERY_NUMBERS = (3, 5, 8, 10, 12)

BATCH_SIZE = 200


def build_workload(schema):
    """200 requests: 40 distinct cases, each submitted five times.

    Real request streams repeat themselves (same tenant, same report,
    same dashboard refresh); the repeats are what the per-worker plan
    caches and fingerprint sharding exploit.
    """
    generator = WorkloadGenerator(schema, config=CONFIG, seed=7)
    distinct = [
        case.to_request(algorithm="rta", alpha=2.0)
        for query_number in QUERY_NUMBERS
        for case in generator.weighted_cases(
            query_number, num_objectives=3, count=8
        )
    ]
    repeats = BATCH_SIZE // len(distinct)
    return distinct * repeats


def run_batch(service, requests, label):
    start = time.perf_counter()
    results = service.optimize_many(requests)
    elapsed = time.perf_counter() - start
    print(f"{label:>9s}: {len(requests)} requests in {elapsed:6.2f} s "
          f"({len(requests) / elapsed:6.1f} req/s)")
    return results, elapsed


def main() -> None:
    schema = tpch_schema()
    requests = build_workload(schema)
    workers = default_worker_count()
    print(f"workload: {len(requests)} requests "
          f"({len(set(r.fingerprint() for r in requests))} distinct), "
          f"{workers} workers")
    print()

    with OptimizerService(
        schema, config=CONFIG, backend="processes", workers=workers,
        cache_size=512,
    ) as service:
        service.worker_pool().warm_up()
        process_results, process_seconds = run_batch(
            service, requests, "processes"
        )
        snapshot = service.metrics.snapshot()
        print(f"           worker attribution: {snapshot['by_worker']}")
        print(f"           plan-cache hits (parent + workers): "
              f"{snapshot['cache_hits']}")
        print()

    thread_service = OptimizerService(
        schema, config=CONFIG, backend="threads", cache_size=512,
    )
    thread_results, thread_seconds = run_batch(
        thread_service, requests, "threads"
    )
    print()

    agree = all(
        a.plan_cost == b.plan_cost
        for a, b in zip(process_results, thread_results)
    )
    print(f"backends agree on every plan: {agree}")
    print(f"speedup processes vs threads: "
          f"{thread_seconds / process_seconds:.2f}x")


if __name__ == "__main__":
    main()
