"""Scenario 1 of the paper: a Cloud provider optimizing user queries.

"A Cloud provider lets users submit SQL queries [...] users are billed
according to the accumulated processing time over all nodes [...]
sampling reduces processing time but has a negative impact on result
quality." The three conflicting objectives are execution time, monetary
cost and result quality (tuple loss). Users set weights in their
profiles and optionally bounds (e.g. a deadline).

Monetary cost is accumulated processing over all participating cores —
the CPU_LOAD objective is exactly that metric, so it serves as the
billing objective. Each user profile becomes a bounded-weighted MOQO
instance solved with the IRA.

Run:  python examples/cloud_provider.py
"""

from repro import (
    FAST_CONFIG,
    INFINITY,
    MultiObjectiveOptimizer,
    Objective,
    Preferences,
    tpch_query,
    tpch_schema,
)

#: Objectives of the Cloud scenario.
OBJECTIVES = (
    Objective.TOTAL_TIME,  # latency the user experiences
    Objective.CPU_LOAD,  # accumulated work -> the user's bill
    Objective.TUPLE_LOSS,  # result quality loss through sampling
)

#: Three user profiles: weights encode relative importance, bounds
#: encode hard limits (a deadline, a budget, a quality floor).
USER_PROFILES = {
    "latency-sensitive analyst": dict(
        weights={Objective.TOTAL_TIME: 10.0, Objective.CPU_LOAD: 0.1,
                 Objective.TUPLE_LOSS: 1e4},
        bounds={},
    ),
    "budget-constrained batch user": dict(
        weights={Objective.TOTAL_TIME: 0.1, Objective.CPU_LOAD: 5.0,
                 Objective.TUPLE_LOSS: 1e4},
        # Hard budget: the accumulated processing must stay cheap.
        bounds={Objective.CPU_LOAD: 50_000.0},
    ),
    "exact-results auditor": dict(
        weights={Objective.TOTAL_TIME: 1.0, Objective.CPU_LOAD: 1.0},
        # No sampling whatsoever: tuple loss must be zero.
        bounds={Objective.TUPLE_LOSS: 0.0},
    ),
}


def main() -> None:
    optimizer = MultiObjectiveOptimizer(tpch_schema(), config=FAST_CONFIG)
    query = tpch_query(10)
    print(f"query: {query.name} ({query.main_block.num_tables} joined tables)")
    print()
    for profile_name, profile in USER_PROFILES.items():
        preferences = Preferences.from_maps(
            OBJECTIVES, weights=profile["weights"], bounds=profile["bounds"]
        )
        result = optimizer.optimize(
            query, preferences, algorithm="ira", alpha=1.2
        )
        print(f"--- {profile_name} ---")
        bounded = [
            f"{o.name.lower()}<={b:g}"
            for o, b in zip(OBJECTIVES, preferences.bounds)
            if b != INFINITY
        ]
        print(f"bounds: {', '.join(bounded) if bounded else '(none)'}")
        print(result.plan.describe())
        for objective in OBJECTIVES:
            print(f"  {objective.name.lower():12s} = "
                  f"{result.cost_of(objective):.4g} {objective.unit}")
        print(f"  respects bounds: {result.respects_bounds}, "
              f"iterations: {result.iterations}, "
              f"opt time: {result.optimization_time_ms:.0f} ms")
        print()


if __name__ == "__main__":
    main()
