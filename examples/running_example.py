"""The paper's running example (Figures 1, 2, 6 and 8) on fixed vectors.

Walks through the formal model of Section 3 on the two-dimensional
(buffer space, time) vector set the paper uses throughout:

* weighted MOQO: the weighted optimum (Figure 1a);
* bounded-weighted MOQO: bounds change the optimum (Figure 1b);
* the Pareto frontier and dominated area (Figure 2);
* dominated vs approximately dominated area for alpha = 1.5 (Figure 6);
* why an approximate Pareto set can miss every bound-respecting plan
  (Figure 8) — the motivation for the IRA.

Run:  python examples/running_example.py
"""

from repro.bench.running_example import (
    RUNNING_EXAMPLE_BOUNDS,
    RUNNING_EXAMPLE_VECTORS,
    RUNNING_EXAMPLE_WEIGHTS,
    bounded_optimum,
    classify_vectors,
    figure8_pathology,
    pareto_frontier,
    weighted_optimum,
)


def main() -> None:
    print("plan cost vectors (buffer space, time):")
    for vector in RUNNING_EXAMPLE_VECTORS:
        print(f"  {vector}")
    print()

    print(f"weights = {RUNNING_EXAMPLE_WEIGHTS}")
    print(f"[fig 1a] weighted optimum:         {weighted_optimum()}")
    print(f"bounds  = {RUNNING_EXAMPLE_BOUNDS}")
    print(f"[fig 1b] bounded-weighted optimum: {bounded_optimum()}")
    print()

    print(f"[fig 2] Pareto frontier: {pareto_frontier()}")
    print()

    classes = classify_vectors(alpha=1.5)
    print("[fig 6] pruning classification at alpha = 1.5:")
    print(f"  dominated (pruned by EXA and RTA):       {classes['dominated']}")
    print(f"  approximately dominated (RTA-prunable):  "
          f"{classes['approximately_dominated']}")
    print(f"  kept by both:                            {classes['kept']}")
    print()

    pathology = figure8_pathology(alpha=1.5)
    print("[fig 8] the bounded-MOQO pathology:")
    print(f"  plan {pathology['kept']} approximately dominates "
          f"{pathology['discarded']} (alpha={pathology['alpha']}),")
    print("  so an approximate Pareto set may keep only the former —")
    print(f"  but under bounds {pathology['bounds']} only "
          f"{pathology['discarded']} is feasible:")
    print(f"  kept respects bounds:      {pathology['kept_respects_bounds']}")
    print(f"  discarded respects bounds: "
          f"{pathology['discarded_respects_bounds']}")
    print("  -> the RTA alone cannot guarantee bounded MOQO; the IRA's")
    print("     iterative refinement detects and repairs this case.")


if __name__ == "__main__":
    main()
