"""Optimize over a custom (non-TPC-H) schema with histogram statistics.

Demonstrates the full user-facing workflow on a bespoke catalog:

1. define tables, columns and indexes;
2. derive filter selectivities from histograms (value predicates
   instead of hand-picked fractions);
3. run the IRA under resource bounds;
4. render the time/buffer tradeoff frontier as an ASCII scatter plot.

Run:  python examples/custom_schema.py
"""

from repro import (
    Column,
    DataType,
    FAST_CONFIG,
    Index,
    JoinPredicate,
    MultiObjectiveOptimizer,
    Objective,
    Preferences,
    Query,
    Table,
    TableRef,
    build_schema,
)
from repro.catalog import Histogram, range_predicate
from repro.viz import frontier_scatter


def build_telemetry_schema():
    """A small IoT-style schema: devices and their readings."""
    devices = Table(
        "devices",
        (
            Column("device_id", DataType.INTEGER, n_distinct=5_000),
            Column("site", DataType.CHAR, n_distinct=40),
        ),
        row_count=5_000,
    )
    readings = Table(
        "readings",
        (
            Column("reading_id", DataType.BIGINT, n_distinct=2_000_000),
            Column("device_id", DataType.INTEGER, n_distinct=5_000),
            Column("temperature", DataType.DECIMAL, n_distinct=500),
            Column("taken_at", DataType.DATE, n_distinct=365),
        ),
        row_count=2_000_000,
    )
    return build_schema(
        "telemetry",
        [devices, readings],
        [
            Index("devices_pk", "devices", ("device_id",), 5_000,
                  unique=True),
            Index("readings_device_idx", "readings", ("device_id",),
                  2_000_000),
            Index("readings_taken_idx", "readings", ("taken_at",),
                  2_000_000),
        ],
    )


def main() -> None:
    schema = build_telemetry_schema()

    # Histogram statistics: readings are uniform over one year of days;
    # the query asks for the last 30 days.
    taken_histogram = Histogram.uniform(
        "taken_at", low=0, high=365, row_count=2_000_000, n_distinct=365
    )
    recent = range_predicate(
        schema.table("readings"), "readings", "taken_at",
        taken_histogram, low=335, high=365,
    )
    print(f"histogram-estimated selectivity of the 30-day window: "
          f"{recent.selectivity:.4f}")

    query = Query(
        name="recent_readings_per_device",
        table_refs=(
            TableRef("devices", "devices"),
            TableRef("readings", "readings"),
        ),
        filters=(recent,),
        joins=(
            JoinPredicate("devices", "device_id", "readings", "device_id"),
        ),
    )

    optimizer = MultiObjectiveOptimizer(schema, config=FAST_CONFIG)
    preferences = Preferences.from_maps(
        (Objective.TOTAL_TIME, Objective.BUFFER_FOOTPRINT,
         Objective.TUPLE_LOSS),
        weights={Objective.TOTAL_TIME: 1.0},
        bounds={
            Objective.BUFFER_FOOTPRINT: 16 * 1024 * 1024.0,  # 16 MB cap
            Objective.TUPLE_LOSS: 0.0,  # exact results required
        },
    )
    result = optimizer.optimize(query, preferences, algorithm="ira",
                                alpha=1.2)
    print()
    print(result.plan.describe())
    print()
    print(f"total time:   {result.cost_of(Objective.TOTAL_TIME):.4g}")
    print(f"buffer (MB):  "
          f"{result.cost_of(Objective.BUFFER_FOOTPRINT) / 1048576.0:.2f}")
    print(f"bounds respected: {result.respects_bounds}")
    print()
    print(frontier_scatter(
        result, Objective.BUFFER_FOOTPRINT, Objective.TOTAL_TIME,
        log_x=True,
    ))


if __name__ == "__main__":
    main()
