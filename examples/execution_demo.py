"""Execute an optimized plan on synthetic data (engine validation).

The optimizer works purely on statistics; this example closes the loop:
it optimizes a small join query, executes the chosen plan on synthetic
rows whose statistical profile matches the catalog, and compares the
optimizer's cardinality estimate against the executed row count. It
also demonstrates the sampling tradeoff by executing a no-sampling plan
and a sampling-allowed plan side by side.

Run:  python examples/execution_demo.py
"""

from repro import (
    Column,
    DataType,
    FAST_CONFIG,
    Index,
    Objective,
    OptimizationRequest,
    OptimizerService,
    Preferences,
    build_schema,
    JoinPredicate,
    Query,
    Table,
    TableRef,
)
from repro.engine import DataGenerator, Executor


def small_schema():
    """A two-table schema small enough to execute instantly."""
    users = Table(
        "users",
        (
            Column("user_id", DataType.INTEGER, n_distinct=500),
            Column("country", DataType.CHAR, n_distinct=10),
        ),
        row_count=500,
    )
    events = Table(
        "events",
        (
            Column("event_id", DataType.INTEGER, n_distinct=5000),
            Column("user_id", DataType.INTEGER, n_distinct=500),
            Column("kind", DataType.CHAR, n_distinct=4),
        ),
        row_count=5000,
    )
    return build_schema(
        "demo",
        [users, events],
        [
            Index("users_pk", "users", ("user_id",), 500, unique=True),
            Index("events_user_idx", "events", ("user_id",), 5000),
        ],
    )


def main() -> None:
    schema = small_schema()
    query = Query(
        name="user_events",
        table_refs=(TableRef("users", "users"), TableRef("events", "events")),
        joins=(JoinPredicate("users", "user_id", "events", "user_id"),),
    )
    service = OptimizerService(schema, config=FAST_CONFIG)
    generator = DataGenerator(schema, seed=42)
    executor = Executor(generator, query, seed=42)

    scenarios = {
        "exact (tuple loss bounded to 0)": Preferences.from_maps(
            (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights={Objective.TOTAL_TIME: 1.0},
            bounds={Objective.TUPLE_LOSS: 0.0},
        ),
        "sampling allowed (loss weighted lightly)": Preferences.from_maps(
            (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights={Objective.TOTAL_TIME: 1.0, Objective.TUPLE_LOSS: 10.0},
        ),
    }
    for label, preferences in scenarios.items():
        result = service.submit(OptimizationRequest(
            query=query, preferences=preferences, algorithm="ira", alpha=1.1,
            tags=("execution-demo",),
        ))
        rows = executor.execute(result.plan)
        print(f"=== {label} ===")
        print(result.plan.describe())
        print(f"  estimated output rows: {result.plan.rows:8.1f}")
        print(f"  executed output rows:  {len(rows):8d}")
        print(f"  estimated tuple loss:  "
              f"{result.cost_of(Objective.TUPLE_LOSS):.3f}")
        print()


if __name__ == "__main__":
    main()
