"""Quickstart: multi-objective optimization through the service API.

Builds an :class:`OptimizerService` over the TPC-H catalog, submits an
immutable :class:`OptimizationRequest` optimizing TPC-H Q3 for three
conflicting objectives (total time, buffer footprint, tuple loss) with
the RTA approximation scheme, prints the chosen plan, its cost vector
and the approximate Pareto frontier — then submits the identical
request again to show it being served from the plan cache.

Run:  python examples/quickstart.py
"""

from repro import (
    FAST_CONFIG,
    Objective,
    OptimizationRequest,
    OptimizerService,
    Preferences,
    tpch_query,
    tpch_schema,
)


def main() -> None:
    # The catalog: TPC-H statistics at scale factor 1. One service owns
    # the schema, the plan cache and the request metrics.
    service = OptimizerService(tpch_schema(scale_factor=1.0),
                               config=FAST_CONFIG)

    # Three conflicting objectives; higher weight = more important.
    objectives = (
        Objective.TOTAL_TIME,
        Objective.BUFFER_FOOTPRINT,
        Objective.TUPLE_LOSS,
    )
    preferences = Preferences.from_maps(
        objectives,
        weights={
            Objective.TOTAL_TIME: 1.0,
            Objective.BUFFER_FOOTPRINT: 1e-6,
            Objective.TUPLE_LOSS: 1e5,
        },
    )

    # alpha = 1.5 guarantees a plan within 50% of the weighted optimum;
    # in practice the plan is usually within a percent (Section 8).
    request = OptimizationRequest(
        query=tpch_query(3),
        preferences=preferences,
        algorithm="rta",
        alpha=1.5,
        tags=("quickstart",),
    )
    result = service.submit(request)

    print("=== chosen plan ===")
    print(result.plan.describe())
    print()
    print("=== plan cost ===")
    for objective, value in zip(objectives, result.plan_cost):
        print(f"  {objective.name.lower():20s} {value:12.4g} {objective.unit}")
    print()
    print(f"weighted cost:        {result.weighted_cost:.4g}")
    print(f"optimization time:    {result.optimization_time_ms:.1f} ms")
    print(f"plans considered:     {result.plans_considered}")
    print()
    print(f"=== approximate Pareto frontier ({len(result.frontier)} plans) ===")
    header = "  ".join(f"{o.name.lower():>16s}" for o in objectives)
    print(header)
    for cost in sorted(result.frontier_costs):
        print("  ".join(f"{v:16.4g}" for v in cost))

    # An identical request is served from the memoizing plan cache.
    service.submit(request)
    stats = service.metrics.snapshot()
    print()
    print(f"=== service metrics after a repeated request ===")
    print(f"requests: {stats['requests']}, cache hits: {stats['cache_hits']}, "
          f"hit rate: {stats['hit_rate']:.0%}")


if __name__ == "__main__":
    main()
