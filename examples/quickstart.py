"""Quickstart: multi-objective optimization of a TPC-H query.

Optimizes TPC-H Q3 for three conflicting objectives (total time, buffer
footprint, tuple loss) with the RTA approximation scheme, prints the
chosen plan, its cost vector and the approximate Pareto frontier the
optimizer produced as a by-product.

Run:  python examples/quickstart.py
"""

from repro import (
    FAST_CONFIG,
    MultiObjectiveOptimizer,
    Objective,
    Preferences,
    tpch_query,
    tpch_schema,
)


def main() -> None:
    # The catalog: TPC-H statistics at scale factor 1.
    schema = tpch_schema(scale_factor=1.0)
    optimizer = MultiObjectiveOptimizer(schema, config=FAST_CONFIG)

    # Three conflicting objectives; higher weight = more important.
    objectives = (
        Objective.TOTAL_TIME,
        Objective.BUFFER_FOOTPRINT,
        Objective.TUPLE_LOSS,
    )
    preferences = Preferences.from_maps(
        objectives,
        weights={
            Objective.TOTAL_TIME: 1.0,
            Objective.BUFFER_FOOTPRINT: 1e-6,
            Objective.TUPLE_LOSS: 1e5,
        },
    )

    # alpha = 1.5 guarantees a plan within 50% of the weighted optimum;
    # in practice the plan is usually within a percent (Section 8).
    result = optimizer.optimize(
        tpch_query(3), preferences, algorithm="rta", alpha=1.5
    )

    print("=== chosen plan ===")
    print(result.plan.describe())
    print()
    print("=== plan cost ===")
    for objective, value in zip(objectives, result.plan_cost):
        print(f"  {objective.name.lower():20s} {value:12.4g} {objective.unit}")
    print()
    print(f"weighted cost:        {result.weighted_cost:.4g}")
    print(f"optimization time:    {result.optimization_time_ms:.1f} ms")
    print(f"plans considered:     {result.plans_considered}")
    print()
    print(f"=== approximate Pareto frontier ({len(result.frontier)} plans) ===")
    header = "  ".join(f"{o.name.lower():>16s}" for o in objectives)
    print(header)
    for cost in sorted(result.frontier_costs):
        print("  ".join(f"{v:16.4g}" for v in cost))


if __name__ == "__main__":
    main()
