"""Figure 3 of the paper: how Q3's optimal plan evolves with preferences.

Three preference settings for TPC-H query 3:

(a) tuple loss bounded to 0, weight only on total time
    -> the time-optimal plan uses hash joins;
(b) additional weight on buffer footprint
    -> the memory-hungry hash joins give way to sort-merge and
       index-nested-loop joins;
(c) an additional bound on startup time
    -> only pipelined index-nested-loop joins remain.

Run:  python examples/preference_evolution.py
"""

from repro import INFINITY
from repro.bench.experiments import figure3_experiment

CAPTIONS = {
    "a_time_optimal": "(a) time-optimal plan for bounded tuple loss (= 0)",
    "b_buffer_weight": "(b) additional weight on buffer space",
    "c_startup_bound": "(c) additional bound on startup time",
}


def main() -> None:
    outcome = figure3_experiment()
    for label, caption in CAPTIONS.items():
        info = outcome[label]
        preferences = info["preferences"]
        print(f"=== {caption} ===")
        weights = ", ".join(
            f"{o.name.lower()}={w:g}"
            for o, w in zip(preferences.objectives, preferences.weights)
            if w > 0
        )
        bounds = ", ".join(
            f"{o.name.lower()}<={b:g}"
            for o, b in zip(preferences.objectives, preferences.bounds)
            if b != INFINITY
        )
        print(f"weights: {weights}")
        print(f"bounds:  {bounds if bounds else '(none)'}")
        print(info["plan"].describe())
        print()


if __name__ == "__main__":
    main()
