"""Scenario 2 of the paper: a multi-tenant server rationing resources.

"A powerful server processes queries of multiple users concurrently.
Minimizing the amount of system resources (such as buffer space, hard
disk space, I/O bandwidth, and number of cores) that are dedicated for
processing one specific query and minimizing that query's execution
time are conflicting objectives."

The administrator defines weights and bounds per tenant class; incoming
queries become :class:`OptimizationRequest`s tagged with their tenant
and are fanned out as one batch over the :class:`OptimizerService`
*process* backend — warm worker processes that sidestep the GIL, the
deployment shape a real CPU-bound server front end needs. Repeated
queries from the same tenant class hit the plan cache instead of
re-optimizing. The example also prints the Pareto frontier so the
administrator can inspect available tradeoffs before adjusting the
limits.

Run:  python examples/multi_tenant_server.py
"""

from repro import (
    FAST_CONFIG,
    Objective,
    OptimizationRequest,
    OptimizerService,
    Preferences,
    tpch_query,
    tpch_schema,
)
from repro.parallel.pool import default_worker_count

#: Resource objectives of the server scenario (one objective per
#: system resource, plus execution time).
OBJECTIVES = (
    Objective.TOTAL_TIME,
    Objective.IO_LOAD,
    Objective.CORES,
    Objective.BUFFER_FOOTPRINT,
    Objective.DISK_FOOTPRINT,
)

TENANT_CLASSES = {
    "premium (fast, resources allowed)": dict(
        weights={Objective.TOTAL_TIME: 1.0},
        bounds={},
    ),
    "standard (capped memory + cores)": dict(
        weights={Objective.TOTAL_TIME: 1.0, Objective.BUFFER_FOOTPRINT: 1e-4},
        bounds={
            Objective.BUFFER_FOOTPRINT: 32 * 1024 * 1024.0,  # 32 MB
            Objective.CORES: 2.0,
        },
    ),
    "background (minimal footprint)": dict(
        weights={
            Objective.IO_LOAD: 1.0,
            Objective.BUFFER_FOOTPRINT: 1e-3,
            Objective.TOTAL_TIME: 0.01,
        },
        bounds={
            Objective.BUFFER_FOOTPRINT: 8 * 1024 * 1024.0,  # 8 MB
            Objective.CORES: 1.0,
        },
    ),
}


def tenant_request(tenant: str, policy: dict) -> OptimizationRequest:
    """One incoming query, optimized under the tenant's resource policy."""
    preferences = Preferences.from_maps(
        OBJECTIVES, weights=policy["weights"], bounds=policy["bounds"]
    )
    return OptimizationRequest(
        query=tpch_query(5),
        preferences=preferences,
        algorithm="ira",  # bounded-weighted MOQO -> iterative refinement
        alpha=1.5,
        tags=(tenant,),
    )


def main() -> None:
    workers = min(default_worker_count(), len(TENANT_CLASSES))
    service = OptimizerService(
        tpch_schema(), config=FAST_CONFIG,
        backend="processes", workers=workers,
    )
    query = tpch_query(5)
    print(f"query: {query.name} ({query.main_block.num_tables} joined "
          f"tables), {workers} worker processes")
    print()

    # One concurrent batch: every tenant class submits the same query
    # under its own policy. Results come back in request order.
    requests = [
        tenant_request(tenant, policy)
        for tenant, policy in TENANT_CLASSES.items()
    ]
    results = service.optimize_many(requests)

    for tenant, result in zip(TENANT_CLASSES, results):
        print(f"--- {tenant} ---")
        print(result.plan.describe())
        for objective in OBJECTIVES:
            print(f"  {objective.name.lower():18s} = "
                  f"{result.cost_of(objective):.4g} {objective.unit}")
        print(f"  respects bounds: {result.respects_bounds}, "
              f"opt time: {result.optimization_time_ms:.0f} ms")
        print()

    # The same tenants submit the same queries again — every request is
    # now served from the plan cache (no re-optimization).
    service.optimize_many(requests)
    stats = service.metrics.snapshot()
    print(f"second wave served from plan cache: "
          f"{stats['cache_hits']}/{stats['requests']} requests were hits")
    print()

    # The frontier lets an administrator see what relaxing a bound buys
    # (Section 4: "a user might want to relax the bound on one objective,
    # knowing that this allows significant savings in another").
    preferences = Preferences.from_maps(
        (Objective.TOTAL_TIME, Objective.BUFFER_FOOTPRINT),
        weights={Objective.TOTAL_TIME: 1.0},
    )
    result = service.submit(OptimizationRequest(
        query=query, preferences=preferences, algorithm="rta", alpha=1.2,
        tags=("admin-frontier",),
    ))
    print("=== time / buffer tradeoffs (approximate Pareto frontier) ===")
    print(f"{'total time':>14s}  {'buffer (MB)':>12s}")
    for time_cost, buffer_cost in sorted(result.frontier_costs):
        print(f"{time_cost:14.4g}  {buffer_cost / 1048576.0:12.2f}")

    service.close()  # shut the worker processes down


if __name__ == "__main__":
    main()
