"""Scenario 2 of the paper: a multi-tenant server rationing resources.

"A powerful server processes queries of multiple users concurrently.
Minimizing the amount of system resources (such as buffer space, hard
disk space, I/O bandwidth, and number of cores) that are dedicated for
processing one specific query and minimizing that query's execution
time are conflicting objectives."

This version runs the scenario the way a deployment would: an
:class:`AsyncOptimizerServer` listens on a real TCP socket and each
tenant is a *concurrent client* speaking the HTTP/JSON wire protocol.
Several clients per tenant class fire the same query at the same time —
identical requests carry identical fingerprints, so the server's
in-flight coalescer runs ONE optimization per tenant class and every
twin awaits the shared result. A second wave of the same traffic is
answered from the plan cache without re-optimizing, and an
administrator request pulls the Pareto frontier over the same socket to
inspect available tradeoffs before adjusting the limits.

Run:  python examples/multi_tenant_server.py
"""

import json
import threading

from repro import (
    FAST_CONFIG,
    Objective,
    OptimizationRequest,
    OptimizerService,
    Preferences,
    tpch_query,
    tpch_schema,
)
from repro.plans.serialize import request_to_dict
from repro.serving import (
    AsyncOptimizerServer,
    ServerThread,
    get_metrics,
    post_optimize,
)

#: Resource objectives of the server scenario (one objective per
#: system resource, plus execution time).
OBJECTIVES = (
    Objective.TOTAL_TIME,
    Objective.IO_LOAD,
    Objective.CORES,
    Objective.BUFFER_FOOTPRINT,
    Objective.DISK_FOOTPRINT,
)

TENANT_CLASSES = {
    "premium (fast, resources allowed)": dict(
        weights={Objective.TOTAL_TIME: 1.0},
        bounds={},
    ),
    "standard (capped memory + cores)": dict(
        weights={Objective.TOTAL_TIME: 1.0, Objective.BUFFER_FOOTPRINT: 1e-4},
        bounds={
            Objective.BUFFER_FOOTPRINT: 32 * 1024 * 1024.0,  # 32 MB
            Objective.CORES: 2.0,
        },
    ),
    "background (minimal footprint)": dict(
        weights={
            Objective.IO_LOAD: 1.0,
            Objective.BUFFER_FOOTPRINT: 1e-3,
            Objective.TOTAL_TIME: 0.01,
        },
        bounds={
            Objective.BUFFER_FOOTPRINT: 8 * 1024 * 1024.0,  # 8 MB
            Objective.CORES: 1.0,
        },
    ),
}

#: Concurrent clients per tenant class — all submit the same query, so
#: each class needs exactly one optimization however many clients race.
CLIENTS_PER_CLASS = 3


def tenant_payload(tenant: str, policy: dict) -> dict:
    """One incoming query as its JSON wire form (tenant policy baked in)."""
    preferences = Preferences.from_maps(
        OBJECTIVES, weights=policy["weights"], bounds=policy["bounds"]
    )
    request = OptimizationRequest(
        query=tpch_query(5),
        preferences=preferences,
        algorithm="ira",  # bounded-weighted MOQO -> iterative refinement
        alpha=1.5,
        tags=(tenant,),
    )
    return request_to_dict(request)


def fire_wave(host: str, port: int) -> dict[str, list]:
    """All tenants hit the server at once; returns envelopes per tenant."""
    envelopes: dict[str, list] = {tenant: [] for tenant in TENANT_CLASSES}
    lock = threading.Lock()
    barrier = threading.Barrier(len(TENANT_CLASSES) * CLIENTS_PER_CLASS)

    def client(tenant: str, payload: dict) -> None:
        barrier.wait()  # make the arrivals genuinely concurrent
        envelope, _body = post_optimize(host, port, payload)
        with lock:
            envelopes[tenant].append(envelope)

    threads = [
        threading.Thread(target=client, args=(tenant, tenant_payload(tenant, policy)))
        for tenant, policy in TENANT_CLASSES.items()
        for _ in range(CLIENTS_PER_CLASS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return envelopes


def main() -> None:
    service = OptimizerService(tpch_schema(), config=FAST_CONFIG)
    server = AsyncOptimizerServer(
        service, max_in_flight=len(TENANT_CLASSES), owns_service=True
    )
    query = tpch_query(5)
    with ServerThread(server) as (host, port):
        print(f"optimizer server on http://{host}:{port} — "
              f"query: {query.name} "
              f"({query.main_block.num_tables} joined tables), "
              f"{len(TENANT_CLASSES)} tenant classes x "
              f"{CLIENTS_PER_CLASS} concurrent clients")
        print()

        # Wave 1: every client of every tenant class hits the socket at
        # the same instant. The coalescer collapses each class's twins
        # onto one in-flight optimization.
        wave = fire_wave(host, port)
        for tenant, envelopes in wave.items():
            result = envelopes[0].result
            print(f"--- {tenant} ---")
            print(f"  plan objectives (chosen by weighted cost):")
            plan_cost = dict(zip(result["objectives"], result["plan_cost"]))
            for objective in OBJECTIVES:
                name = objective.name.lower()
                print(f"    {name:18s} = {plan_cost[name]:.4g} "
                      f"{objective.unit}")
            coalesced = sum(1 for e in envelopes if e.coalesced)
            distinct = {json.dumps(e.result, sort_keys=True)
                        for e in envelopes}
            print(f"  respects bounds: {result['respects_bounds']}, "
                  f"opt time: "
                  f"{result['metrics']['optimization_time_ms']:.0f} ms")
            print(f"  {len(envelopes)} clients -> 1 leader + {coalesced} "
                  f"coalesced followers, {len(distinct)} distinct "
                  f"response payload(s)")
            print()

        # Wave 2: the same tenants submit the same queries again — every
        # request is now served from the plan cache (no re-optimization).
        fire_wave(host, port)
        snapshot = get_metrics(host, port)
        stats = snapshot["service"]
        serving = snapshot["serving"]
        print(f"optimizations actually run: {stats['cache_misses']} "
              f"(one per tenant class)")
        print(f"coalesce hits across both waves: "
              f"{serving['coalesce_hits']} "
              f"(hit rate {serving['coalesce_hit_rate']:.0%}); "
              f"plan-cache hits: {stats['cache_hits']}")
        print(f"server p99 latency: {serving['latency']['p99_ms']:.1f} ms "
              f"over {serving['latency']['count']} responses")
        print()

        # The frontier lets an administrator see what relaxing a bound
        # buys (Section 4: "a user might want to relax the bound on one
        # objective, knowing that this allows significant savings in
        # another") — fetched over the same wire protocol.
        admin = OptimizationRequest(
            query=query,
            preferences=Preferences.from_maps(
                (Objective.TOTAL_TIME, Objective.BUFFER_FOOTPRINT),
                weights={Objective.TOTAL_TIME: 1.0},
            ),
            algorithm="rta", alpha=1.2, tags=("admin-frontier",),
        )
        envelope, _body = post_optimize(host, port, request_to_dict(admin))
        print("=== time / buffer tradeoffs (approximate Pareto frontier) ===")
        print(f"{'total time':>14s}  {'buffer (MB)':>12s}")
        for time_cost, buffer_cost in sorted(envelope.result["frontier"]):
            print(f"{time_cost:14.4g}  {buffer_cost / 1048576.0:12.2f}")
    # ServerThread.__exit__ stopped the server and closed the service.


if __name__ == "__main__":
    main()
