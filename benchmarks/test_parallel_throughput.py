"""Backend throughput: process pool vs thread pool on generated workloads.

The paper's schemes are CPU-bound Python dynamic programs, so the
thread backend can only overlap bookkeeping — the GIL serializes the
real work. This benchmark runs the same generated 100-query workload
through both backends and reports wall-clock throughput, plus the
bit-for-bit equality of intra-query-sharded EXA/RTA frontiers with
their single-process counterparts.

Speedup assertions are gated on the parallelism actually available:
``min(--workers, usable CPUs)``. With four-way parallelism the process
backend must be at least 2x faster than threads; with two-way it must
beat threads; on a single CPU the comparison is reported but not
asserted (physics wins).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.experiments import BENCH_CONFIG, make_service
from repro.core.rta import rta
from repro.core.exa import exact_moqo
from repro.parallel.pool import usable_cpu_count as usable_cpus
from repro.workload import WorkloadGenerator

#: Queries whose optimization is heavy enough to measure (3+ tables).
WORKLOAD_QUERIES = (5, 8)

#: Total batch size of the throughput comparison.
WORKLOAD_SIZE = 100


@pytest.fixture(scope="module")
def workload():
    """100 distinct weighted 3-objective RTA requests over TPC-H."""
    generator = WorkloadGenerator(
        make_service().schema, config=BENCH_CONFIG, seed=42
    )
    per_query = WORKLOAD_SIZE // len(WORKLOAD_QUERIES)
    cases = [
        case
        for query_number in WORKLOAD_QUERIES
        for case in generator.weighted_cases(
            query_number, num_objectives=3, count=per_query
        )
    ]
    return [case.to_request(algorithm="rta", alpha=2.0) for case in cases]


def test_process_backend_throughput(workload, parallel_workers, report):
    workers = parallel_workers
    effective = min(workers, usable_cpus())

    with make_service(backend="processes", workers=workers) as processes:
        processes.worker_pool().warm_up()  # exclude spawn cost
        start = time.perf_counter()
        process_results = processes.optimize_many(workload)
        process_seconds = time.perf_counter() - start

    threads = make_service(backend="threads", workers=workers)
    start = time.perf_counter()
    thread_results = threads.optimize_many(workload, max_workers=workers)
    thread_seconds = time.perf_counter() - start

    assert len(process_results) == len(thread_results) == len(workload)
    for process_result, thread_result in zip(
        process_results, thread_results
    ):
        assert process_result.plan_cost == thread_result.plan_cost

    speedup = thread_seconds / process_seconds if process_seconds else 0.0
    lines = [
        "backend throughput -- "
        f"{len(workload)} requests, {workers} workers, "
        f"{usable_cpus()} usable CPUs",
        f"  threads:   {thread_seconds:8.2f} s  "
        f"({len(workload) / thread_seconds:6.1f} req/s)",
        f"  processes: {process_seconds:8.2f} s  "
        f"({len(workload) / process_seconds:6.1f} req/s)",
        f"  speedup:   {speedup:8.2f} x  "
        f"(effective parallelism {effective})",
    ]
    report("\n".join(lines))

    if effective >= 4:
        assert speedup >= 2.0, (
            f"process backend only {speedup:.2f}x faster than threads "
            f"with {effective}-way parallelism (expected >= 2x)"
        )
    elif effective >= 2:
        assert speedup >= 1.15, (
            f"process backend did not beat threads ({speedup:.2f}x) "
            f"with {effective}-way parallelism"
        )
    # Single-CPU environments: reported, not asserted.


@pytest.mark.parametrize("algorithm", ["exa", "rta"])
def test_sharded_frontier_bitwise_equal(
    workload, parallel_workers, algorithm, report
):
    """Sharded EXA/RTA frontiers match unsharded ones exactly."""
    with make_service(
        backend="processes", workers=parallel_workers, cache_size=16
    ) as service:
        checked = 0
        mismatches = []
        for request in workload[:3] + workload[-3:]:
            request = request.replace(algorithm=algorithm)
            block = request.query.main_block
            if algorithm == "rta":
                base = rta(
                    block, service.optimizer.cost_model,
                    request.preferences, request.alpha, service.config,
                )
            else:
                base = exact_moqo(
                    block, service.optimizer.cost_model,
                    request.preferences, service.config,
                )
            service.cache.clear()
            sharded = service.submit_sharded(
                request, num_shards=parallel_workers
            )
            checked += 1
            if [c for c, _ in sharded.frontier] != [
                c for c, _ in base.frontier
            ] or sharded.plan_cost != base.plan_cost:
                mismatches.append(request.query_name)
        report(
            f"sharded {algorithm} frontiers: {checked} checked, "
            f"{len(mismatches)} mismatches ({parallel_workers} shards, "
            f"bitwise comparison)"
        )
        assert not mismatches
