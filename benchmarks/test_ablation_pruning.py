"""Ablation — pruning variant (Section 6.2's warning).

"It seems tempting to reduce the number of stored plans further by
discarding all plans that a newly inserted plan approximately
dominates. [...] the additional change would destroy near-optimality
guarantees."

The benchmark runs the RTA with the sound pruning (reject on
approximate dominance, discard on exact dominance) and the aggressive
variant (discard on approximate dominance too) and reports the worst
observed approximation factor against the EXA optimum.
"""

from collections import defaultdict

from repro.bench.ablations import pruning_variant_ablation
from repro.bench.reporting import format_table

ALPHA_U = 2.0


def test_ablation_pruning_variant(benchmark, report):
    rows = benchmark.pedantic(
        lambda: pruning_variant_ablation(alpha_u=ALPHA_U),
        rounds=1, iterations=1,
    )
    by_variant: dict[str, list] = defaultdict(list)
    for row in rows:
        by_variant[row.variant].append(row)

    table_rows = []
    for variant, variant_rows in by_variant.items():
        worst = max(r.approximation_factor for r in variant_rows)
        mean_frontier = sum(r.frontier_size for r in variant_rows) / len(
            variant_rows
        )
        table_rows.append((variant, [worst, mean_frontier]))
    report(format_table(
        f"Ablation — pruning variants (alpha_U = {ALPHA_U})",
        ["worst approx factor", "avg frontier size"],
        table_rows,
    ))

    # The sound variant honors the formal guarantee on every case.
    standard_worst = max(
        r.approximation_factor for r in by_variant["standard"]
    )
    assert standard_worst <= ALPHA_U * (1 + 1e-9)

    # The aggressive variant stores no more plans than the sound one
    # (that is its entire appeal) ...
    standard_avg = sum(
        r.frontier_size for r in by_variant["standard"]
    ) / len(by_variant["standard"])
    aggressive_avg = sum(
        r.frontier_size for r in by_variant["aggressive"]
    ) / len(by_variant["aggressive"])
    assert aggressive_avg <= standard_avg + 1e-9
    # ... but its factors are not certified; we only report them. (On
    # small queries it often stays lucky — the *mechanism* of unbounded
    # drift is proven in tests/test_rta.py.)
    assert all(
        r.approximation_factor >= 1.0 - 1e-9
        for r in by_variant["aggressive"]
    )
