"""Figure 3 — evolution of the optimal plan for TPC-H Q3.

Paper shape: (a) the time-optimal plan under a zero tuple-loss bound
uses hash joins; (b) weighting buffer space replaces them with
sort-merge / index-nested-loop joins; (c) bounding startup time leaves
only (pipelined) index-nested-loop joins.
"""

from repro.bench.experiments import figure3_experiment


def test_fig3_preference_evolution(benchmark, report):
    outcome = benchmark.pedantic(figure3_experiment, rounds=1, iterations=1)
    lines = ["Figure 3 — optimal plan for Q3 under changing preferences"]
    for label, info in outcome.items():
        lines.append(f"--- {label} ---")
        lines.append(info["plan"].describe())
    report("\n".join(lines))

    joins = {
        label: [op for op in info["operators"] if "Join" in op]
        for label, info in outcome.items()
    }
    # (a) time-optimal: hash joins only.
    assert all("HashJoin" in op for op in joins["a_time_optimal"])
    # (b) buffer weight: no hash joins anymore.
    assert not any("HashJoin" in op for op in joins["b_buffer_weight"])
    # (c) startup bound: only index-nested-loop joins.
    assert all("IdxNL" in op for op in joins["c_startup_bound"])
