"""Figure 5 — performance of the exact algorithm (EXA) on TPC-H.

Paper shape: with one objective the EXA is trivially fast everywhere;
with 3/6/9 objectives optimization time, memory and the number of
Pareto plans per table set explode with the number of joined tables,
and timeouts appear. The number of Pareto plans far exceeds the 2^l
bound assumed by Ganguly et al. (8 / 64 / 512 for l = 3 / 6 / 9).

Scale note: timeout and cases per cell are reduced (see
``repro.bench.experiments``); the 2-hour/20-case paper setting is
reachable via REPRO_BENCH_TIMEOUT / REPRO_BENCH_CASES.
"""

from repro.bench.experiments import figure5_experiment
from repro.bench.reporting import FIGURE5_METRICS, format_figure


def test_fig5_exa_scaling(benchmark, report):
    cells = benchmark.pedantic(
        lambda: figure5_experiment(objective_counts=(1, 3, 6, 9)),
        rounds=1, iterations=1,
    )
    report(format_figure(
        "Figure 5 — EXA on TPC-H (timeout stands in for the paper's 2h)",
        cells, FIGURE5_METRICS,
    ))

    by_cell = {(c.query_number, c.parameter): c.aggregates["EXA"]
               for c in cells}
    queries = sorted({q for q, _ in by_cell})

    # Single-objective optimization never times out and stays tiny.
    for query_number in queries:
        single = by_cell[(query_number, 1)]
        assert single.timeout_pct == 0.0
        assert single.avg_pareto_plans <= 4.0

    # More objectives -> more Pareto plans (where no timeout distorts).
    for query_number in queries:
        complete = [
            by_cell[(query_number, l)].avg_pareto_plans
            for l in (1, 3, 6, 9)
            if by_cell[(query_number, l)].timeout_pct == 0.0
        ]
        assert complete == sorted(complete)

    # Somewhere in the workload the EXA hits the timeout with many
    # objectives (the paper's headline observation)...
    assert any(
        by_cell[(q, l)].timeout_pct > 0 for q in queries for l in (6, 9)
    )
    # ... and the 2^l bound on Pareto plans is exceeded for l = 3
    # (bound 8) on the larger queries.
    assert any(
        by_cell[(q, 3)].avg_pareto_plans > 8 for q in queries
    )
