"""Ablation — bushy vs left-deep plan spaces.

The paper extends Ganguly et al.'s algorithm "to generate bushy plans
in addition to left-deep plans". This ablation quantifies what the
extension buys: the bushy space considers more plans (and takes longer)
but its frontier covers the left-deep one; on some queries the bushy
weighted optimum is strictly better.
"""

import dataclasses

from repro import Objective, Preferences, tpch_query
from repro.bench.experiments import BENCH_CONFIG, make_optimizer
from repro.bench.reporting import format_table
from repro.config import PlanShape

OBJECTIVES = (
    Objective.TOTAL_TIME,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)


def run_comparison():
    bushy_optimizer = make_optimizer(timeout_seconds=30.0)
    deep_config = dataclasses.replace(
        BENCH_CONFIG, plan_shape=PlanShape.LEFT_DEEP, timeout_seconds=30.0
    )
    deep_optimizer = make_optimizer(timeout_seconds=30.0,
                                    config=deep_config)
    prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 10.0))
    rows = []
    for query_number in (3, 10, 5):
        query = tpch_query(query_number)
        bushy = bushy_optimizer.optimize(query, prefs, algorithm="rta",
                                         alpha=1.2)
        deep = deep_optimizer.optimize(query, prefs, algorithm="rta",
                                       alpha=1.2)
        rows.append({
            "query": query_number,
            "bushy_considered": bushy.plans_considered,
            "deep_considered": deep.plans_considered,
            "bushy_cost": bushy.weighted_cost,
            "deep_cost": deep.weighted_cost,
            "bushy_ms": bushy.optimization_time_ms,
            "deep_ms": deep.optimization_time_ms,
        })
    return rows


def test_ablation_plan_shape(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report(format_table(
        "Ablation — bushy vs left-deep plan space (RTA, alpha = 1.2)",
        ["bushy considered", "deep considered", "bushy w-cost",
         "deep w-cost", "bushy ms", "deep ms"],
        [
            (
                f"q{row['query']}",
                [
                    row["bushy_considered"], row["deep_considered"],
                    row["bushy_cost"], row["deep_cost"],
                    row["bushy_ms"], row["deep_ms"],
                ],
            )
            for row in rows
        ],
    ))
    for row in rows:
        # Left-deep is a strict subspace: fewer candidates considered.
        assert row["deep_considered"] <= row["bushy_considered"]
        # Bushy plans can only help quality (both carry the same
        # alpha guarantee, so allow the approximation slack).
        assert row["bushy_cost"] <= row["deep_cost"] * 1.2 * (1 + 1e-9)
