"""Baseline comparison — approximation schemes vs guarantee-free methods.

Positions the paper's contribution against the two natural shortcuts
its introduction and related-work section argue about:

* **wsum** — reduce MOQO to single-objective DP over the weighted sum
  (unsound per the paper's Example 1: the weighted-sum principle of
  optimality breaks when objectives combine heterogeneously);
* **idp** — iterative dynamic programming (Kossmann & Stocker), a
  polynomial heuristic that commits greedily between blocks.

Shape: the baselines are at least as fast as the RTA, but only the RTA
carries a guarantee; measured plan quality of the baselines varies per
query while the RTA stays within alpha of the exact optimum.
"""

from repro import Objective, Preferences, tpch_query
from repro.bench.experiments import BENCH_CONFIG, make_optimizer
from repro.bench.reporting import format_table
from repro.workload import WorkloadGenerator

ALPHA = 1.2


def run_comparison():
    optimizer = make_optimizer(timeout_seconds=30.0)
    generator = WorkloadGenerator(optimizer.schema, config=BENCH_CONFIG,
                                  seed=21)
    rows = []
    for query_number in (3, 10):
        for case in generator.weighted_cases(query_number, 3, 3):
            exact = optimizer.optimize(case.query, case.preferences,
                                       algorithm="exa")
            optimum = exact.weighted_cost
            row = {"query": query_number, "case": case.case_index}
            for algorithm in ("rta", "wsum", "idp"):
                result = optimizer.optimize(
                    case.query, case.preferences, algorithm=algorithm,
                    alpha=ALPHA,
                )
                factor = (
                    result.weighted_cost / optimum if optimum > 0 else 1.0
                )
                row[f"{algorithm}_factor"] = factor
                row[f"{algorithm}_ms"] = result.optimization_time_ms
            rows.append(row)
    return rows


def test_baseline_comparison(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report(format_table(
        f"Baselines vs RTA (alpha = {ALPHA}; factor = weighted cost / "
        "exact optimum)",
        ["rta factor", "wsum factor", "idp factor", "rta ms", "wsum ms",
         "idp ms"],
        [
            (
                f"q{row['query']}#{row['case']}",
                [
                    row["rta_factor"], row["wsum_factor"],
                    row["idp_factor"], row["rta_ms"], row["wsum_ms"],
                    row["idp_ms"],
                ],
            )
            for row in rows
        ],
    ))
    # Only the RTA carries a guarantee; random objective subsets may be
    # open (DESIGN.md 4a), so require the vast majority within alpha.
    within = sum(
        1 for row in rows if row["rta_factor"] <= ALPHA * (1 + 1e-9)
    )
    assert within >= 0.8 * len(rows)
    for row in rows:
        # Baselines can never beat the exact optimum.
        assert row["wsum_factor"] >= 1.0 - 1e-9
        assert row["idp_factor"] >= 1.0 - 1e-9
    # The weighted-sum baseline is the fastest method overall (scalar
    # pruning), per aggregate time.
    total = lambda key: sum(row[key] for row in rows)  # noqa: E731
    assert total("wsum_ms") <= total("rta_ms") * 1.5