"""Extension — cost-model ground-truthing gate over workload families.

The optimizer's estimates are only as useful as their agreement with
executed work. This benchmark closes the loop on both workload families
(TPC-H chains, JOB-style IMDB chains): calibrate per-predicate
selectivities against generated data (:mod:`repro.workloads.calibrate`),
then execute alternative join orders through the mini engine and score
predicted-vs-actual rank agreement (:mod:`repro.workloads.validate`).

The gate asserts that calibration measurably helps — median q-error can
only improve, and the calibrated estimates must clear rank-agreement
floors (Kendall tau, top-1 regret) on both families.
"""

from repro.bench.reporting import format_table
from repro.cost.model import CostModel
from repro.workloads import (
    calibrate_family,
    job_chain_family,
    summarize,
    tpch_chain_family,
    validate_family,
)

#: Draws per family: enough to cover the per-draw filter variation
#: while keeping each execution-backed validation run in seconds.
COUNT = 4
SAMPLE_SIZE = 256
MAX_PLANS = 8

FAMILIES = {
    "tpch-chain": lambda: tpch_chain_family(extra_joins=3, seed=7),
    "job-chain": lambda: job_chain_family(joins=4, seed=3),
}


def run_family(make_family):
    family = make_family()
    calibration = calibrate_family(
        family, count=COUNT, sample_size=SAMPLE_SIZE
    )
    catalog = summarize(
        validate_family(family, count=COUNT, max_plans=MAX_PLANS)
    )
    calibrated_model = CostModel(
        family.schema, calibration=calibration.statistics
    )
    calibrated = summarize(
        validate_family(
            family, count=COUNT, cost_model=calibrated_model,
            max_plans=MAX_PLANS,
        )
    )
    return {
        "predicates": len(calibration.reports),
        "overridden": sum(r.overridden for r in calibration.reports),
        "q_cat_median": calibration.median_q_error(False),
        "q_cal_median": calibration.median_q_error(True),
        "q_cat_max": calibration.max_q_error(False),
        "q_cal_max": calibration.max_q_error(True),
        "tau_cat": catalog["mean_kendall_tau"],
        "tau_cal": calibrated["mean_kendall_tau"],
        "regret_cat": catalog["max_top1_regret"],
        "regret_cal": calibrated["max_top1_regret"],
    }


def run_families():
    return {name: run_family(make) for name, make in FAMILIES.items()}


def test_cost_accuracy_gate(benchmark, report):
    results = benchmark.pedantic(run_families, rounds=1, iterations=1)
    report(format_table(
        f"Cost-model ground-truthing ({COUNT} draws/family, "
        f"{SAMPLE_SIZE}-row samples, {MAX_PLANS} join orders/query)",
        ["preds", "overridden", "med q cat", "med q cal", "max q cat",
         "max q cal", "tau cat", "tau cal", "regret cat", "regret cal"],
        [
            (
                name,
                [
                    data["predicates"], data["overridden"],
                    data["q_cat_median"], data["q_cal_median"],
                    data["q_cat_max"], data["q_cal_max"],
                    data["tau_cat"], data["tau_cal"],
                    data["regret_cat"], data["regret_cal"],
                ],
            )
            for name, data in results.items()
        ],
    ))
    for name, data in results.items():
        # Calibration may only improve estimation accuracy: the
        # significance gate keeps insignificant measurements from
        # displacing already-exact catalog estimates.
        assert data["q_cal_median"] <= data["q_cat_median"], name
        assert data["q_cal_max"] <= data["q_cat_max"], name
        # Rank-agreement floors for the calibrated estimates: executed
        # work must follow the predicted ordering, and the plan the
        # estimates pick must stay within 10% of the best measured one
        # (measured: tau 0.79/0.97, regret 0.0 on both families).
        assert data["tau_cal"] >= 0.6, name
        assert data["regret_cal"] <= 0.10, name
        # Calibration must not degrade plan choice.
        assert data["regret_cal"] <= data["regret_cat"] + 1e-9, name
