"""Ablation — strict pruning closure vs the paper's pruning.

Reproduction finding (DESIGN.md 4a): the paper's cost-dominance pruning
loses its guarantee on objective subsets that are not closed under the
cost model's recursive dependencies (startup time reads total time;
local cost terms read sampling-dependent cardinality). This benchmark
quantifies the tradeoff on the observed TPC-H Q5 case family: the
default mode is faster but can exceed alpha by an order of magnitude,
strict mode pays more optimization time and honors the guarantee.
"""

from repro import Objective, Preferences, tpch_query
from repro.bench.experiments import make_optimizer
from repro.bench.reporting import format_table

#: Open objective subset from the observed violation.
OPEN = (
    Objective.STARTUP_TIME,
    Objective.DISK_FOOTPRINT,
    Objective.ENERGY,
)

WEIGHT_SETS = (
    (0.253, 0.283, 0.755),
    (0.8, 0.1, 0.4),
    (0.1, 0.9, 0.3),
)

ALPHA = 1.5


def run_comparison():
    optimizer = make_optimizer(timeout_seconds=60.0)
    rows = []
    for query_number in (3, 10, 5):
        for weights in WEIGHT_SETS:
            prefs = Preferences(objectives=OPEN, weights=weights)
            query = tpch_query(query_number)
            exact = optimizer.optimize(query, prefs, algorithm="exa")
            default = optimizer.optimize(
                query, prefs, algorithm="rta", alpha=ALPHA
            )
            strict = optimizer.optimize(
                query, prefs, algorithm="rta", alpha=ALPHA, strict=True
            )
            reference = min(
                exact.weighted_cost, default.weighted_cost,
                strict.weighted_cost,
            )
            rows.append({
                "query": query_number,
                "default_factor": default.weighted_cost / reference,
                "strict_factor": strict.weighted_cost / reference,
                "default_ms": default.optimization_time_ms,
                "strict_ms": strict.optimization_time_ms,
                "any_timeout": exact.timed_out or strict.timed_out,
            })
    return rows


def test_ablation_strict_mode(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = [
        (
            f"q{row['query']}",
            [
                row["default_factor"],
                row["strict_factor"],
                row["default_ms"],
                row["strict_ms"],
            ],
        )
        for row in rows
    ]
    report(format_table(
        f"Ablation — strict pruning closure (alpha = {ALPHA}, "
        "objectives: startup/disk/energy)",
        ["default factor", "strict factor", "default ms", "strict ms"],
        table,
    ))

    complete = [row for row in rows if not row["any_timeout"]]
    assert complete, "all strict runs timed out; raise the timeout"
    # Strict mode honors the guarantee on every completed case.
    for row in complete:
        assert row["strict_factor"] <= ALPHA * (1 + 1e-9)
    # The default mode violates it somewhere in this family (that is
    # the point of the ablation).
    assert any(
        row["default_factor"] > ALPHA * (1 + 1e-9) for row in complete
    )
