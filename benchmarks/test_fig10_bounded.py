"""Figure 10 — EXA vs IRA(1.15/1.5/2) on bounded MOQO.

All nine objectives are optimized; the number of bounded objectives
varies over 3/6/9 (the paper's setup). Paper shape: the EXA's
performance is insensitive to the number of bounds and keeps timing
out; the IRA rarely times out and is much faster in aggregate; IRA
iteration counts can exceed one (and do not correlate simply with the
user precision).

Scale note: reduced operator space, cases per cell and timeout (see
``repro.bench.experiments``); scale up via REPRO_BENCH_* env vars.
"""

from repro.bench.experiments import figure10_experiment
from repro.bench.reporting import FIGURE10_METRICS, format_figure


def test_fig10_bounded_moqo(benchmark, report):
    cells = benchmark.pedantic(
        lambda: figure10_experiment(bound_counts=(3, 6, 9)),
        rounds=1, iterations=1,
    )
    report(format_figure(
        "Figure 10 — bounded MOQO: EXA vs IRA", cells, FIGURE10_METRICS,
        parameter_label="b",
    ))

    ira_labels = ("IRA(1.15)", "IRA(1.5)", "IRA(2)")

    # Aggregate timeout picture: every IRA variant times out less than
    # the EXA overall (paper, at 2h scale: 464 EXA timeouts vs <= 4 per
    # IRA; at this seconds-scale stand-in the IRA still exceeds the
    # budget on the largest queries, and occasionally on small ones
    # when tight bounds force many refinement iterations).
    exa_timeouts = sum(c.aggregates["EXA"].timeout_pct for c in cells)
    assert exa_timeouts > 0, "expected EXA timeouts in the workload"
    for label in ira_labels:
        ira_timeouts = sum(c.aggregates[label].timeout_pct for c in cells)
        assert ira_timeouts < exa_timeouts

    # Total optimization time, on the cells each IRA variant finished:
    # the IRA undercuts the EXA there (comparing over all cells would
    # be distorted by the timeout cap truncating the EXA's real cost).
    for label in ira_labels:
        finished = [
            c for c in cells if c.aggregates[label].timeout_pct == 0.0
        ]
        assert finished
        ira_total = sum(c.aggregates[label].avg_time_ms for c in finished)
        exa_total = sum(c.aggregates["EXA"].avg_time_ms for c in finished)
        assert ira_total < exa_total

    # Iteration counts: at least one everywhere; the refinement
    # mechanism fires somewhere (the paper reports up to ~100
    # iterations, and more iterations for *larger* user alpha — check
    # the aggregate direction over all cells).
    for cell in cells:
        for label in ira_labels:
            assert cell.aggregates[label].avg_iterations >= 1.0
    total_iterations = {
        label: sum(c.aggregates[label].avg_iterations for c in cells)
        for label in ira_labels
    }
    assert max(total_iterations.values()) > len(cells), (
        "no cell ever refined beyond the first iteration"
    )
    # Paper: "in some cases, the number of iterations of the IRA
    # increases with the user-defined approximation factor" — check the
    # aggregate direction with slack (timeout-truncated cells add noise).
    assert total_iterations["IRA(2)"] >= 0.8 * total_iterations["IRA(1.15)"]

    # Bound satisfaction: random bounds can be *jointly* infeasible
    # (each is anchored at a different objective's optimum), in which
    # case Definition 2's fallback makes violating plans correct. The
    # meaningful check: whenever the finished EXA found a
    # bound-respecting plan for a case, the finished IRA found one too
    # (guaranteed by the stopping condition).
    for cell in cells:
        exa_records = {
            r.case_index: r for r in cell.aggregates["EXA"].records
        }
        for label in ira_labels:
            for record in cell.aggregates[label].records:
                if record.timed_out:
                    continue
                exa_record = exa_records[record.case_index]
                if exa_record.timed_out:
                    continue
                if exa_record.respects_bounds:
                    assert record.respects_bounds, (
                        f"{label} q{cell.query_number}/b={cell.parameter} "
                        f"case {record.case_index}: EXA found a feasible "
                        "plan but the IRA returned an infeasible one"
                    )
