"""Extension — scaling across join-graph topologies.

The paper's Figure 5/9 order queries by from-clause size because "this
number correlates (with several caveats) with the search space size".
One caveat is topology: at the same table count, a clique has far more
connected subsets and splits than a chain. This benchmark quantifies
the caveat on synthetic queries: candidates considered and optimization
time per shape at fixed size, for EXA vs RTA.
"""

from repro import MultiObjectiveOptimizer, Objective, Preferences
from repro.bench.experiments import BENCH_CONFIG
from repro.bench.reporting import format_table
from repro.query.synthetic import GraphShape, synthetic_query, synthetic_schema

NUM_TABLES = 5

OBJECTIVES = (
    Objective.TOTAL_TIME,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)


def run_shapes():
    schema = synthetic_schema(num_tables=NUM_TABLES, base_rows=5_000)
    optimizer = MultiObjectiveOptimizer(
        schema, config=BENCH_CONFIG.with_timeout(30.0)
    )
    prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 10.0))
    rows = {}
    for shape in GraphShape:
        query = synthetic_query(shape, NUM_TABLES)
        exact = optimizer.optimize(query, prefs, algorithm="exa")
        approx = optimizer.optimize(query, prefs, algorithm="rta",
                                    alpha=1.5)
        rows[shape.value] = {
            "exa_considered": exact.plans_considered,
            "rta_considered": approx.plans_considered,
            "exa_ms": exact.optimization_time_ms,
            "rta_ms": approx.optimization_time_ms,
            "exa_pareto": exact.pareto_last_complete,
            "timeout": exact.timed_out or approx.timed_out,
        }
    return rows


def test_graph_shape_scaling(benchmark, report):
    rows = benchmark.pedantic(run_shapes, rounds=1, iterations=1)
    report(format_table(
        f"Join-graph topology at {NUM_TABLES} tables (EXA vs RTA(1.5))",
        ["exa considered", "rta considered", "exa ms", "rta ms",
         "exa pareto"],
        [
            (
                shape,
                [
                    data["exa_considered"], data["rta_considered"],
                    data["exa_ms"], data["rta_ms"], data["exa_pareto"],
                ],
            )
            for shape, data in rows.items()
        ],
    ))
    # Topology dominates scaling at fixed table count: the clique
    # considers the most candidates, the chain/star the fewest.
    assert rows["clique"]["exa_considered"] > rows["chain"]["exa_considered"]
    assert rows["clique"]["exa_considered"] > rows["star"]["exa_considered"]
    # The RTA prunes the denser spaces down hardest (relative savings
    # at least as large on the clique as on the chain).
    for shape, data in rows.items():
        if not data["timeout"]:
            assert data["rta_considered"] <= data["exa_considered"]
