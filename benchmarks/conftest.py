"""Benchmark fixtures: result directory and report sink.

Every benchmark regenerates one figure of the paper and both prints the
resulting table(s) and persists them under ``benchmarks/results/`` so a
run leaves an inspectable artifact trail.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_collection_modifyitems(items: list[pytest.Item]) -> None:
    """Everything under benchmarks/ carries the ``benchmark`` marker.

    Selecting (``-m benchmark``) or deselecting (``-m 'not benchmark'``)
    the slow suite then needs no per-test annotations. The hook receives
    the whole session's items, so filter to this directory.
    """
    benchmarks_dir = pathlib.Path(__file__).parent
    for item in items:
        if benchmarks_dir in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.benchmark)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Callable that prints a report and writes it to results/<test>.txt."""

    def _report(text: str) -> None:
        name = request.node.name.replace("[", "_").replace("]", "")
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _report
