"""Sustained-load benchmark for the serving layer.

Open-loop arrivals: the client fires requests on a pre-computed bursty
schedule regardless of how fast the server answers — the load does not
politely wait for responses the way a closed loop would, so queueing
and shedding behave the way they do in production. The schedule is
seeded, so runs are comparable.

Two scenarios:

* ``test_bursty_open_loop_latency`` — a request mix drawn from a small
  pool of tenant payloads (coalescing and the plan cache both get
  exercised) against a provisioned server; reports p50/p99 client
  latency, throughput, coalesce hit rate.
* ``test_overload_sheds_with_backpressure`` — a burst of distinct
  requests against a deliberately tiny server (one slot, short queue);
  reports the shed rate, which must be > 0: admission control refuses
  work instead of letting latency collapse.
"""

from __future__ import annotations

import asyncio
import json
import random
import time

from repro import Objective, OptimizationRequest, Preferences, tpch_query
from repro.bench.experiments import BENCH_CONFIG, make_service
from repro.plans.serialize import request_to_dict
from repro.serving import AsyncHttpClient, AsyncOptimizerServer
from repro.serving.protocol import CODE_OK, CODE_SHED

SEED = 1404  # arXiv:1404.0046

#: Request pool: a few tenant-like payloads over two TPC-H queries.
POOL_QUERIES = (3, 5)
POOL_ALPHAS = (1.5, 2.0, 2.5, 3.0)

PREFS = Preferences.from_maps(
    (Objective.TOTAL_TIME, Objective.BUFFER_FOOTPRINT,
     Objective.TUPLE_LOSS),
    weights={Objective.TOTAL_TIME: 1.0, Objective.TUPLE_LOSS: 1e3},
)


def payload_pool() -> list[dict]:
    return [
        request_to_dict(OptimizationRequest(
            query=tpch_query(number), preferences=PREFS,
            algorithm="rta", alpha=alpha,
        ))
        for number in POOL_QUERIES
        for alpha in POOL_ALPHAS
    ]


def bursty_schedule(
    rng: random.Random,
    arrivals: int,
    mean_gap_s: float = 0.25,
    max_burst: int = 5,
) -> list[float]:
    """Offsets (seconds) of ``arrivals`` arrivals in Poisson bursts."""
    offsets: list[float] = []
    now = 0.0
    while len(offsets) < arrivals:
        now += rng.expovariate(1.0 / mean_gap_s)
        for _ in range(rng.randint(1, max_burst)):
            if len(offsets) < arrivals:
                offsets.append(now)
    return offsets


def percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1,
        max(0, round(fraction * (len(sorted_values) - 1))),
    )
    return sorted_values[index]


async def drive_open_loop(
    host: str, port: int, schedule: list[tuple[float, dict]]
) -> list[tuple[str, bool, float]]:
    """Fire the schedule; returns (code, coalesced, latency_ms) rows."""

    async def one(offset: float, payload: dict):
        await asyncio.sleep(offset)
        async with AsyncHttpClient(host, port) as client:
            started = time.perf_counter()
            envelope, _body = await client.optimize(payload)
            latency_ms = (time.perf_counter() - started) * 1000.0
        return envelope.code, bool(envelope.coalesced), latency_ms

    return await asyncio.gather(
        *(one(offset, payload) for offset, payload in schedule)
    )


def test_bursty_open_loop_latency(report):
    rng = random.Random(SEED)
    pool = payload_pool()
    offsets = bursty_schedule(rng, arrivals=80)
    schedule = [(offset, rng.choice(pool)) for offset in offsets]

    async def scenario():
        service = make_service(config=BENCH_CONFIG, cache_size=64)
        server = AsyncOptimizerServer(
            service,
            max_in_flight=4,
            max_queue_depth=64,
            owns_service=True,
        )
        async with server:
            host, port = server.address
            started = time.perf_counter()
            rows = await drive_open_loop(host, port, schedule)
            elapsed = time.perf_counter() - started
            snapshot = server.metrics_snapshot()
        return rows, elapsed, snapshot

    rows, elapsed, snapshot = asyncio.run(scenario())

    codes = [code for code, _c, _l in rows]
    assert codes.count(CODE_OK) == len(rows)  # provisioned: nothing shed
    latencies = sorted(latency for _c, _co, latency in rows)
    coalesced = sum(1 for _c, was_coalesced, _l in rows if was_coalesced)
    serving = snapshot["serving"]
    service_stats = snapshot["service"]
    span = max(offset for offset, _p in schedule)
    lines = [
        "serving load -- bursty open-loop arrivals "
        f"(seed {SEED}, {len(rows)} requests over {span:.1f} s, "
        f"pool of {len(pool)} distinct payloads)",
        f"  completed:        {len(rows)} ok in {elapsed:.2f} s "
        f"({len(rows) / elapsed:.1f} req/s)",
        "  client latency:   "
        f"p50 {percentile(latencies, 0.50):7.1f} ms   "
        f"p99 {percentile(latencies, 0.99):7.1f} ms   "
        f"max {latencies[-1]:7.1f} ms",
        "  server latency:   "
        f"p50 {serving['latency']['p50_ms']:7.1f} ms   "
        f"p99 {serving['latency']['p99_ms']:7.1f} ms",
        f"  coalesce hits:    {serving['coalesce_hits']} "
        f"(hit rate {serving['coalesce_hit_rate']:.0%}; "
        f"{coalesced} clients got a coalesced response)",
        f"  plan-cache hits:  {service_stats['cache_hits']}",
        f"  optimizations:    {service_stats['cache_misses']} "
        f"(of {len(rows)} requests)",
        f"  sheds:            {serving['sheds']}",
        f"  peak queue depth: {snapshot['admission']['peak_queue_depth']}",
    ]
    report("\n".join(lines))

    # The pool is much smaller than the arrival count: most requests
    # must be absorbed by coalescing or the plan cache.
    absorbed = serving["coalesce_hits"] + service_stats["cache_hits"]
    assert absorbed >= len(rows) // 2
    assert service_stats["cache_misses"] <= len(pool)
    assert serving["sheds"] == 0
    json.dumps(snapshot)  # the artifact's source stays serializable


def test_overload_sheds_with_backpressure(report):
    """Admission control under a burst 12x the server's capacity."""
    rng = random.Random(SEED + 1)
    # Distinct alphas -> distinct fingerprints: coalescing cannot save
    # the server here, only admission control can.
    payloads = [
        request_to_dict(OptimizationRequest(
            query=tpch_query(5), preferences=PREFS,
            algorithm="rta", alpha=1.1 + 0.07 * index,
        ))
        for index in range(24)
    ]
    rng.shuffle(payloads)
    schedule = [(0.001 * index, payload)
                for index, payload in enumerate(payloads)]

    async def scenario():
        service = make_service(config=BENCH_CONFIG, cache_size=64)
        server = AsyncOptimizerServer(
            service,
            max_in_flight=1,
            max_queue_depth=1,
            owns_service=True,
        )
        async with server:
            host, port = server.address
            rows = await drive_open_loop(host, port, schedule)
            snapshot = server.metrics_snapshot()
        return rows, snapshot

    rows, snapshot = asyncio.run(scenario())

    codes = [code for code, _c, _l in rows]
    ok = codes.count(CODE_OK)
    shed = codes.count(CODE_SHED)
    assert ok + shed == len(rows)
    shed_latencies = sorted(
        latency for code, _co, latency in rows if code == CODE_SHED
    )
    lines = [
        "serving overload -- burst of "
        f"{len(rows)} distinct requests at a 1-slot/1-queue server",
        f"  served ok:  {ok}",
        f"  shed (429): {shed}  (shed rate {shed / len(rows):.0%})",
        "  shed answer latency: "
        f"p99 {percentile(shed_latencies, 0.99):.1f} ms "
        "(refusals are immediate, not queued)",
        f"  admission counters: admitted "
        f"{snapshot['admission']['admitted']}, shed "
        f"{snapshot['admission']['shed']}",
    ]
    report("\n".join(lines))

    # The acceptance criterion: a run with shed rate > 0.
    assert shed > 0
    assert snapshot["serving"]["sheds"] == shed
    # Capacity is 1 running + 1 queued; everything else must bounce.
    assert shed >= len(rows) - 8
    # Refusals must be cheap — orders of magnitude under optimize time.
    if shed_latencies:
        assert percentile(shed_latencies, 0.99) < 1000.0
