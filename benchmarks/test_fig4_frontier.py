"""Figure 4 — 3-D approximate Pareto frontiers for TPC-H Q5.

Paper shape: the alpha = 1.25 run yields a denser frontier (more cost
vectors) than the coarse alpha = 2 run over the objectives tuple loss,
buffer footprint and total time.
"""

from repro.bench.experiments import figure4_experiment


def test_fig4_frontier_granularity(benchmark, report):
    frontiers = benchmark.pedantic(
        lambda: figure4_experiment(alphas=(2.0, 1.25)),
        rounds=1, iterations=1,
    )
    lines = ["Figure 4 — approximate Pareto frontiers for Q5 "
             "(tuple loss, buffer bytes, total time)"]
    for alpha, points in frontiers.items():
        lines.append(f"alpha = {alpha}: {len(points)} frontier plans")
        for loss, buffer_bytes, total in points[:12]:
            lines.append(
                f"    loss={loss:6.3f}  buffer={buffer_bytes:14.0f}  "
                f"time={total:14.4g}"
            )
        if len(points) > 12:
            lines.append(f"    ... ({len(points) - 12} more)")
    report("\n".join(lines))

    coarse = frontiers[2.0]
    fine = frontiers[1.25]
    # Finer precision keeps at least as many representative tradeoffs.
    assert len(fine) >= len(coarse)
    assert len(coarse) >= 3
    # The frontier spans the tuple-loss axis (sampling tradeoffs).
    losses = {round(p[0], 2) for p in fine}
    assert len(losses) >= 3
