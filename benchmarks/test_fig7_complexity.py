"""Figure 7 — analytic worst-case complexity curves.

Paper setting: j = 6 operators, l = 3 objectives, m = 1e5 tuples.
Shape: Selinger lowest; RTA curves polynomially above Selinger (finer
alpha higher); EXA grows super-exponentially and overtakes both RTA
curves around n ~ 5 (alpha = 1.5) / n ~ 7 (alpha = 1.05).
"""

from repro.bench.experiments import figure7_data
from repro.bench.reporting import format_series


def test_fig7_complexity_curves(benchmark, report):
    data = benchmark.pedantic(figure7_data, rounds=10, iterations=1)
    report(format_series(
        "Figure 7 — time complexity (j=6, l=3, m=1e5)", data
    ))

    n_values = data["n"]
    exa = data["EXA"]
    fine = data["RTA(1.05)"]
    coarse = data["RTA(1.5)"]
    selinger = data["Selinger"]

    for i in range(len(n_values)):
        # Selinger is the lower envelope.
        assert selinger[i] <= coarse[i]
        # Finer precision never cheaper than coarser.
        assert coarse[i] <= fine[i]

    # EXA overtakes both approximation schemes for large n (the
    # crossover the paper's Figure 7 shows).
    assert exa[0] < fine[0]  # small n: EXA cheaper than fine RTA
    assert exa[-1] > fine[-1]  # large n: EXA explodes past it
    assert exa[-1] > coarse[-1]

    # EXA growth is doubly exponential-ish: ratio increases.
    ratios = [exa[i + 1] / exa[i] for i in range(len(exa) - 1)]
    assert all(r2 > r1 for r1, r2 in zip(ratios, ratios[1:]))
