"""Ablation — IRA precision-refinement policy (Section 7.2).

The paper's policy ``alpha_U ** (2**(-i/(3l-3)))`` balances three
requirements: strictly decreasing, per-iteration work roughly doubling
(bounds redundant work), and not refining faster than necessary. We
compare it against a fast-halving policy (refines too aggressively: the
final iterations are near-exact and dominate everything) and a slow
policy (refines too timidly: many near-identical iterations redo the
same work).
"""

from collections import defaultdict

from repro.bench.ablations import refinement_policy_ablation
from repro.bench.reporting import format_table


def test_ablation_refinement_policy(benchmark, report):
    rows = benchmark.pedantic(
        lambda: refinement_policy_ablation(alpha_u=1.5),
        rounds=1, iterations=1,
    )
    by_policy: dict[str, list] = defaultdict(list)
    for row in rows:
        by_policy[row.policy].append(row)

    def mean(values):
        values = list(values)
        return sum(values) / len(values)

    table_rows = [
        (
            policy,
            [
                mean(r.iterations for r in policy_rows),
                mean(r.plans_considered for r in policy_rows),
                mean(r.time_ms for r in policy_rows),
            ],
        )
        for policy, policy_rows in by_policy.items()
    ]
    report(format_table(
        "Ablation — IRA refinement policies (alpha_U = 1.5)",
        ["avg iterations", "avg plans considered", "avg time (ms)"],
        table_rows,
    ))

    paper = by_policy["paper"]
    halving = by_policy["halving"]
    slow = by_policy["slow"]

    # All policies return plans of identical quality guarantees — only
    # the work differs. Identical weighted costs per case:
    by_case = defaultdict(dict)
    for row in rows:
        by_case[(row.query_number, row.case_index)][row.policy] = row
    for case_rows in by_case.values():
        costs = {round(r.weighted_cost, 6) for r in case_rows.values()}
        # Policies may pick different near-optimal plans; all must be
        # within alpha_U of each other.
        assert max(costs) <= min(costs) * 1.5 * (1 + 1e-9)

    # Work comparison on cases that actually needed refinement: when
    # any policy iterates more than once, the slow policy needs at
    # least as many iterations as the paper's.
    for case_rows in by_case.values():
        if case_rows["paper"].iterations > 1:
            assert (
                case_rows["slow"].iterations
                >= case_rows["paper"].iterations
            )

    # Aggregate totals exist and are positive (reported above).
    assert mean(r.plans_considered for r in paper) > 0
    assert mean(r.plans_considered for r in halving) > 0
    assert mean(r.plans_considered for r in slow) > 0
