"""Extension — optimizer behavior across TPC-H scale factors.

The algorithms never touch data, but the catalog statistics shape the
plan space: at larger scale factors intermediate results outgrow
work_mem (spills appear), hash tables get expensive in buffer space,
and sampling buys more absolute time. This benchmark sweeps the scale
factor and reports how the chosen plan and the frontier react — a
sanity check that the cost substrate responds to statistics the way a
real optimizer does. Optimization *time* should stay roughly flat (the
paper's complexity depends on log(m), Lemma 2).
"""

from repro import Objective, Preferences, tpch_query, tpch_schema
from repro.bench.experiments import BENCH_CONFIG
from repro.bench.reporting import format_table
from repro.core.optimizer import MultiObjectiveOptimizer

SCALE_FACTORS = (0.01, 0.1, 1.0, 10.0)

OBJECTIVES = (
    Objective.TOTAL_TIME,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)


def run_sweep():
    from repro.core.selinger import minimum_cost

    prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 1e5))
    rows = []
    for scale_factor in SCALE_FACTORS:
        optimizer = MultiObjectiveOptimizer(
            tpch_schema(scale_factor),
            config=BENCH_CONFIG.with_timeout(30.0),
        )
        result = optimizer.optimize(
            tpch_query(3), prefs, algorithm="rta", alpha=1.2
        )
        lossless_minimum = minimum_cost(
            tpch_query(3).main_block, optimizer.cost_model,
            Objective.TOTAL_TIME, optimizer.config,
        )
        rows.append({
            "scale_factor": scale_factor,
            "time_cost": result.cost_of(Objective.TOTAL_TIME),
            "loss": result.cost_of(Objective.TUPLE_LOSS),
            "lossless_minimum": lossless_minimum,
            "opt_ms": result.optimization_time_ms,
            "frontier": len(result.frontier),
        })
    return rows


def test_scale_factor_sweep(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(format_table(
        "Scale-factor sweep (TPC-H Q3, RTA alpha = 1.2, loss weight 1e5)",
        ["chosen time", "chosen loss", "lossless min time", "opt ms",
         "frontier size"],
        [
            (
                f"sf={row['scale_factor']:g}",
                [row["time_cost"], row["loss"], row["lossless_minimum"],
                 row["opt_ms"], row["frontier"]],
            )
            for row in rows
        ],
    ))
    # The *lossless* minimum execution time grows monotonically with
    # the data size (the substrate responds to statistics).
    minima = [row["lossless_minimum"] for row in rows]
    assert minima == sorted(minima)
    # The fixed tuple-loss penalty buys ever more absolute time as data
    # grows: at some scale factor the optimizer switches to sampling.
    assert rows[0]["loss"] == 0.0
    assert rows[-1]["loss"] > 0.0
    # Optimization effort stays within one order of magnitude across
    # three decades of data size (complexity depends on log m).
    opt_times = [row["opt_ms"] for row in rows]
    assert max(opt_times) < 60 * min(opt_times) + 50.0