"""Tracing-overhead guard: the default observability path must be free.

Runs the vectorized-speedup gate workload twice per round — once with
the full default observability path (phase timers on, no tracer
activated: one contextvar read per instrumented call site plus a few
``perf_counter`` reads per candidate block) and once with
``phase_timers=False`` as the uninstrumented baseline — interleaved so
thermal/frequency drift hits both sides equally, and compares the
paired-median ratio. The disabled-tracer path must stay under the
regression gate (quiet-box measurement: ~1.00x); both
configurations must produce bit-for-bit identical frontiers (the flag
only changes what gets measured, never which plans are produced —
``phase_timers`` is excluded from the request fingerprint for exactly
that reason).

When the baseline runs too fast to time reliably the ratio is reported
but not asserted, same policy as the other timing gates.
"""

from __future__ import annotations

import dataclasses
import statistics
import time

from repro.bench.experiments import BENCH_CONFIG
from repro.catalog.tpch import tpch_schema
from repro.core.optimizer import MultiObjectiveOptimizer
from repro.core.preferences import Preferences
from repro.core.rta import rta
from repro.cost.objectives import Objective
from repro.obs.trace import active_tracer

#: (query number, alpha) cells — the RTA side of the speedup gate;
#: tighter alphas than the speedup gate so the baseline comfortably
#: clears the measurability floor and the overhead gate actually asserts.
WORKLOAD = ((5, 1.3), (8, 1.3), (10, 1.3))

#: Paired rounds per cell: the median of 7 per-round ratios shrugs
#: off up to three disturbed rounds, where min-of-N (whose minima can
#: come from different rounds) let sustained scheduler noise through
#: often enough to flake.
ROUNDS = 7

#: Below this baseline duration the ratio is noise, not signal.
MIN_MEASURABLE_SECONDS = 0.2

#: Regression tripwire, not the expected value: quiet-box runs
#: measure ~1.00x, but on a contended CI box the paired-median ratio
#: wobbles into the 1.05-1.10 range, so the gate sits at 15% — an
#: accidental always-on tracer or a hot-path regression costs far
#: more, and anything tighter flakes on scheduler noise.
MAX_OVERHEAD_RATIO = 1.15

PREFERENCES = Preferences(
    objectives=(
        Objective.TOTAL_TIME,
        Objective.BUFFER_FOOTPRINT,
        Objective.TUPLE_LOSS,
    ),
    weights=(1.0, 1e-6, 1e4),
)


def test_tracing_overhead_disabled_path(report):
    from repro.query.tpch_queries import tpch_query

    assert active_tracer() is None, "benchmark must run untraced"
    instrumented = MultiObjectiveOptimizer(
        tpch_schema(), config=BENCH_CONFIG
    )
    assert instrumented.config.phase_timers is True
    baseline = MultiObjectiveOptimizer(
        tpch_schema(),
        config=dataclasses.replace(BENCH_CONFIG, phase_timers=False),
    )

    lines = ["tracing overhead -- phase timers + inactive tracer vs off"]
    total_baseline = 0.0
    weighted_ratio = 0.0
    for query_number, alpha in WORKLOAD:
        query = tpch_query(query_number).main_block
        base_times: list[float] = []
        instr_times: list[float] = []
        for round_number in range(ROUNDS):
            # Alternate which side runs first: within a round the
            # second run sits on whatever slowdown (turbo decay, a
            # background task) the first one triggered, and a fixed
            # order turns that into a systematic bias on a busy box.
            sides = [
                ("baseline", baseline),
                ("instrumented", instrumented),
            ]
            if round_number % 2:
                sides.reverse()
            for side, optimizer in sides:
                start = time.perf_counter()
                result = rta(
                    query, optimizer.cost_model, PREFERENCES, alpha,
                    optimizer.config,
                )
                elapsed = time.perf_counter() - start
                if side == "baseline":
                    baseline_result = result
                    base_times.append(elapsed)
                else:
                    timed_result = result
                    instr_times.append(elapsed)

        # Identical answers: the flag changes measurement, not plans.
        assert not timed_result.timed_out and not baseline_result.timed_out
        assert [c for c, _ in timed_result.frontier] == [
            c for c, _ in baseline_result.frontier
        ]
        assert timed_result.plan_cost == baseline_result.plan_cost
        # Only the instrumented run reports phases; they cover most of
        # its wall time (enumerate is defined as the remainder).
        assert timed_result.phase_ms
        assert baseline_result.phase_ms == {}

        # Paired per-round ratios + median: the two sides of one round
        # run back to back, so a slow period (scheduler preemption, a
        # frequency dip spanning whole seconds) inflates both and
        # cancels in the ratio; the median then shrugs off the rounds
        # where the disturbance split a pair. Min-of-N cannot do this —
        # the two minima may come from different rounds, and sustained
        # noise biases whichever side it overlapped more.
        ratio = statistics.median(
            on / off for on, off in zip(instr_times, base_times)
        )
        best_baseline = min(base_times)
        total_baseline += best_baseline
        weighted_ratio += ratio * best_baseline
        lines.append(
            f"  q{query_number:<2} alpha={alpha:<4} "
            f"off {best_baseline * 1000:8.1f} ms   "
            f"on {min(instr_times) * 1000:8.1f} ms   "
            f"median ratio {ratio:5.3f}"
        )

    overall = (
        weighted_ratio / total_baseline if total_baseline else 0.0
    )
    lines.append(
        f"  total         off {total_baseline * 1000:8.1f} ms   "
        f"weighted median ratio {overall:5.3f}  "
        f"(gate < {MAX_OVERHEAD_RATIO})"
    )
    report("\n".join(lines))

    if total_baseline >= MIN_MEASURABLE_SECONDS:
        assert overall < MAX_OVERHEAD_RATIO, (
            f"observability default path costs {overall:.3f}x the "
            f"uninstrumented baseline (gate: < {MAX_OVERHEAD_RATIO}x)"
        )
    # Sub-measurable runs: reported, not asserted (timing noise wins).
