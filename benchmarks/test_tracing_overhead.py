"""Tracing-overhead guard: the default observability path must be free.

Runs the vectorized-speedup gate workload twice per round — once with
the full default observability path (phase timers on, no tracer
activated: one contextvar read per instrumented call site plus a few
``perf_counter`` reads per candidate block) and once with
``phase_timers=False`` as the uninstrumented baseline — interleaved so
thermal/frequency drift hits both sides equally, and compares the
min-of-N times. The disabled-tracer path must cost **< 3%**; both
configurations must produce bit-for-bit identical frontiers (the flag
only changes what gets measured, never which plans are produced —
``phase_timers`` is excluded from the request fingerprint for exactly
that reason).

When the baseline runs too fast to time reliably the ratio is reported
but not asserted, same policy as the other timing gates.
"""

from __future__ import annotations

import dataclasses
import time

from repro.bench.experiments import BENCH_CONFIG
from repro.catalog.tpch import tpch_schema
from repro.core.optimizer import MultiObjectiveOptimizer
from repro.core.preferences import Preferences
from repro.core.rta import rta
from repro.cost.objectives import Objective
from repro.obs.trace import active_tracer

#: (query number, alpha) cells — the RTA side of the speedup gate;
#: tighter alphas than the speedup gate so the baseline comfortably
#: clears the measurability floor and the <3% gate actually asserts.
WORKLOAD = ((5, 1.3), (8, 1.3), (10, 1.3))

#: Interleaved rounds per cell; min-of-N defeats one-off scheduler noise.
ROUNDS = 3

#: Below this baseline duration the ratio is noise, not signal.
MIN_MEASURABLE_SECONDS = 0.2

MAX_OVERHEAD_RATIO = 1.03

PREFERENCES = Preferences(
    objectives=(
        Objective.TOTAL_TIME,
        Objective.BUFFER_FOOTPRINT,
        Objective.TUPLE_LOSS,
    ),
    weights=(1.0, 1e-6, 1e4),
)


def test_tracing_overhead_disabled_path(report):
    from repro.query.tpch_queries import tpch_query

    assert active_tracer() is None, "benchmark must run untraced"
    instrumented = MultiObjectiveOptimizer(
        tpch_schema(), config=BENCH_CONFIG
    )
    assert instrumented.config.phase_timers is True
    baseline = MultiObjectiveOptimizer(
        tpch_schema(),
        config=dataclasses.replace(BENCH_CONFIG, phase_timers=False),
    )

    lines = ["tracing overhead -- phase timers + inactive tracer vs off"]
    total_instrumented = 0.0
    total_baseline = 0.0
    for query_number, alpha in WORKLOAD:
        query = tpch_query(query_number).main_block
        best_instrumented = float("inf")
        best_baseline = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            baseline_result = rta(
                query, baseline.cost_model, PREFERENCES, alpha,
                baseline.config,
            )
            best_baseline = min(
                best_baseline, time.perf_counter() - start
            )

            start = time.perf_counter()
            timed_result = rta(
                query, instrumented.cost_model, PREFERENCES, alpha,
                instrumented.config,
            )
            best_instrumented = min(
                best_instrumented, time.perf_counter() - start
            )

        # Identical answers: the flag changes measurement, not plans.
        assert not timed_result.timed_out and not baseline_result.timed_out
        assert [c for c, _ in timed_result.frontier] == [
            c for c, _ in baseline_result.frontier
        ]
        assert timed_result.plan_cost == baseline_result.plan_cost
        # Only the instrumented run reports phases; they cover most of
        # its wall time (enumerate is defined as the remainder).
        assert timed_result.phase_ms
        assert baseline_result.phase_ms == {}

        total_instrumented += best_instrumented
        total_baseline += best_baseline
        ratio = (
            best_instrumented / best_baseline if best_baseline else 0.0
        )
        lines.append(
            f"  q{query_number:<2} alpha={alpha:<4} "
            f"off {best_baseline * 1000:8.1f} ms   "
            f"on {best_instrumented * 1000:8.1f} ms   "
            f"ratio {ratio:5.3f}"
        )

    overall = (
        total_instrumented / total_baseline if total_baseline else 0.0
    )
    lines.append(
        f"  total         off {total_baseline * 1000:8.1f} ms   "
        f"on {total_instrumented * 1000:8.1f} ms   "
        f"ratio {overall:5.3f}  (gate < {MAX_OVERHEAD_RATIO})"
    )
    report("\n".join(lines))

    if total_baseline >= MIN_MEASURABLE_SECONDS:
        assert overall < MAX_OVERHEAD_RATIO, (
            f"observability default path costs {overall:.3f}x the "
            f"uninstrumented baseline (gate: < {MAX_OVERHEAD_RATIO}x)"
        )
    # Sub-measurable runs: reported, not asserted (timing noise wins).
