"""Vectorized-enumeration speedup gate: batched vs scalar hot path.

Runs the EXA/RTA scaling workload (the paper's Figure 5/9 regime —
multi-join TPC-H queries with three objectives) through the same
optimizer twice: once with the batched block kernels
(``vectorized_enumeration=True``, the default) and once with the scalar
per-candidate reference loop. Both runs produce bit-for-bit identical
frontiers (asserted here and property-tested in
``tests/test_vectorized_equivalence.py``); the batched path must be at
least 2x faster overall (target from the issue: 3x on the EXA scaling
cells). The assertion is gated the same way as the parallel-backend
throughput gate: when the scalar reference runs too fast to time
reliably, the comparison is reported but not asserted.
"""

from __future__ import annotations

import dataclasses
import time

from repro.bench.experiments import BENCH_CONFIG
from repro.catalog.tpch import tpch_schema
from repro.core.exa import exact_moqo
from repro.core.optimizer import MultiObjectiveOptimizer
from repro.core.preferences import Preferences
from repro.core.rta import rta
from repro.cost.objectives import Objective

#: (query number, algorithm label, runner) cells of the scaling sweep.
WORKLOAD = (
    (5, "exa"),
    (8, "rta"),
    (10, "exa"),
)

#: Below this scalar-reference duration the timing is noise-dominated
#: and the speedup is reported, not asserted.
MIN_MEASURABLE_SECONDS = 0.2

PREFERENCES = Preferences(
    objectives=(
        Objective.TOTAL_TIME,
        Objective.BUFFER_FOOTPRINT,
        Objective.TUPLE_LOSS,
    ),
    weights=(1.0, 1e-6, 1e4),
)


def _run(optimizer, query, algorithm):
    if algorithm == "exa":
        return exact_moqo(
            query, optimizer.cost_model, PREFERENCES, optimizer.config
        )
    return rta(
        query, optimizer.cost_model, PREFERENCES, 2.0, optimizer.config
    )


def test_vectorized_speedup(report):
    from repro.query.tpch_queries import tpch_query

    # No timeout: a timed-out scalar reference would compare fallback
    # frontiers, not full runs (make_optimizer's default is 2 s).
    vectorized_optimizer = MultiObjectiveOptimizer(
        tpch_schema(), config=BENCH_CONFIG
    )
    scalar_optimizer = MultiObjectiveOptimizer(
        tpch_schema(),
        config=dataclasses.replace(
            BENCH_CONFIG, vectorized_enumeration=False
        ),
    )

    lines = ["vectorized enumeration -- batched vs scalar hot path"]
    total_vectorized = 0.0
    total_scalar = 0.0
    for query_number, algorithm in WORKLOAD:
        query = tpch_query(query_number).main_block

        start = time.perf_counter()
        vectorized = _run(vectorized_optimizer, query, algorithm)
        vectorized_seconds = time.perf_counter() - start

        start = time.perf_counter()
        scalar = _run(scalar_optimizer, query, algorithm)
        scalar_seconds = time.perf_counter() - start

        # The speedup only counts if the answers are identical.
        assert not vectorized.timed_out and not scalar.timed_out
        assert [c for c, _ in vectorized.frontier] == [
            c for c, _ in scalar.frontier
        ]
        assert vectorized.plan_cost == scalar.plan_cost
        assert vectorized.plans_considered == scalar.plans_considered

        total_vectorized += vectorized_seconds
        total_scalar += scalar_seconds
        cell_speedup = (
            scalar_seconds / vectorized_seconds if vectorized_seconds else 0.0
        )
        hit_rate = vectorized.candidates_vectorized / max(
            vectorized.plans_considered, 1
        )
        lines.append(
            f"  q{query_number:<2} {algorithm.upper():4s} "
            f"scalar {scalar_seconds:7.2f} s   "
            f"batched {vectorized_seconds:7.2f} s   "
            f"speedup {cell_speedup:5.2f} x   "
            f"candidates {vectorized.plans_considered:>9}   "
            f"batch-path {hit_rate:5.1%}"
        )

    speedup = total_scalar / total_vectorized if total_vectorized else 0.0
    lines.append(
        f"  total     scalar {total_scalar:7.2f} s   "
        f"batched {total_vectorized:7.2f} s   speedup {speedup:5.2f} x"
    )
    report("\n".join(lines))

    if total_scalar >= MIN_MEASURABLE_SECONDS:
        assert speedup >= 2.0, (
            f"vectorized enumeration only {speedup:.2f}x faster than the "
            f"scalar loop (expected >= 2x on the scaling workload)"
        )
    # Sub-measurable runs: reported, not asserted (timing noise wins).
