"""Figure 9 — EXA vs RTA(1.15/1.5/2) on weighted MOQO.

Paper shape: the RTA never times out where the EXA does; it is often
orders of magnitude faster; optimization time and memory decrease as
alpha grows; and the average weighted cost of RTA plans stays far below
the worst-case guarantee (typically within a few percent of the best
plan any algorithm found).

Scale note: reduced operator space, cases per cell and timeout (see
``repro.bench.experiments``); scale up via REPRO_BENCH_* env vars.
"""

from repro.bench.experiments import figure9_experiment
from repro.bench.reporting import FIGURE9_METRICS, format_figure


def test_fig9_weighted_moqo(benchmark, report):
    cells = benchmark.pedantic(
        lambda: figure9_experiment(objective_counts=(3, 6, 9)),
        rounds=1, iterations=1,
    )
    rta_labels = ("RTA(1.15)", "RTA(1.5)", "RTA(2)")

    # Guarantee bookkeeping, reported like the paper reports its q7
    # violation: cells whose average weighted-cost percentage exceeds
    # the variant's alpha. Random objective subsets are not necessarily
    # closed under the cost model's recursive dependencies, so a few
    # violations are expected in default mode (see DESIGN.md 4a and the
    # strict-mode ablation); the paper observed the same on TPC-H q7.
    guarantee = {"RTA(1.15)": 115.0, "RTA(1.5)": 150.0, "RTA(2)": 200.0}
    violations = [
        (label, cell.query_number, cell.parameter,
         cell.aggregates[label].avg_weighted_cost_pct)
        for cell in cells
        for label in rta_labels
        if cell.aggregates[label].avg_weighted_cost_pct
        > guarantee[label] + 1e-6
    ]
    text = format_figure(
        "Figure 9 — weighted MOQO: EXA vs RTA", cells, FIGURE9_METRICS,
    )
    text += "\nguarantee exceedances (open objective subsets, DESIGN.md 4a):"
    if violations:
        for label, query_number, parameter, value in violations:
            text += f"\n  {label} q{query_number}/l={parameter}: {value:.0f}%"
    else:
        text += " none"
    report(text)

    # Timeouts: the RTA never times out more often than the EXA on the
    # same cell, and overall it times out far less (the paper's RTA
    # never timed out at the 2h budget; at this seconds-scale stand-in
    # the largest 6-8 table cells can still exceed it).
    for cell in cells:
        for label in rta_labels:
            assert (
                cell.aggregates[label].timeout_pct
                <= cell.aggregates["EXA"].timeout_pct + 1e-9
            )
    exa_total = sum(c.aggregates["EXA"].timeout_pct for c in cells)
    assert exa_total > 0, "expected EXA timeouts in the workload"
    for label in rta_labels:
        rta_total = sum(c.aggregates[label].timeout_pct for c in cells)
        assert rta_total < exa_total

    # Wherever the EXA times out and the RTA finishes comfortably
    # inside the budget, the RTA is clearly faster (orders of magnitude
    # at paper scale; at this seconds-scale stand-in the margin shrinks
    # on the largest cells). Cells where the RTA finished but averaged
    # close to the budget are excluded: whether such a borderline cell
    # records 0% or 33% timeouts is machine noise, and a 1.9s-vs-2.0s
    # "win" says nothing about the asymptotic separation.
    from repro.bench.experiments import DEFAULT_TIMEOUT_SECONDS

    comfortable_ms = 0.8 * DEFAULT_TIMEOUT_SECONDS * 1000.0
    for cell in cells:
        if cell.aggregates["EXA"].timeout_pct == 100.0:
            for label in rta_labels:
                if (
                    cell.aggregates[label].timeout_pct == 0.0
                    and cell.aggregates[label].avg_time_ms < comfortable_ms
                ):
                    assert (
                        cell.aggregates[label].avg_time_ms
                        < cell.aggregates["EXA"].avg_time_ms * 0.75
                    )

    # Near-optimality in practice: the large majority of cells stays
    # within the guarantee, and EXA defines the optimum when complete.
    for label in rta_labels:
        values = [
            cell.aggregates[label].avg_weighted_cost_pct
            for cell in cells
            if cell.aggregates[label].avg_weighted_cost_pct
            == cell.aggregates[label].avg_weighted_cost_pct
        ]
        within = sum(1 for v in values if v <= guarantee[label] + 1e-6)
        assert within >= 0.8 * len(values), (
            f"{label}: only {within}/{len(values)} cells within guarantee"
        )

    # Coarser alpha -> no more stored plans than finer alpha (modulo
    # timeout-distorted cells).
    for cell in cells:
        if cell.aggregates["RTA(1.15)"].timeout_pct == 0.0 and (
            cell.aggregates["RTA(2)"].timeout_pct == 0.0
        ):
            fine = cell.aggregates["RTA(1.15)"].avg_pareto_plans
            coarse = cell.aggregates["RTA(2)"].avg_pareto_plans
            assert coarse <= fine + 1e-9
