"""Resilience-overhead guard: idle supervision must be (nearly) free.

The production process-backend path now runs every dispatch through the
resilience machinery — a closed circuit breaker consulted per submit, a
retry loop that never iterates, a chaos hook that is ``None``, and a
heartbeat that is off. This guard times the same request stream through
ONE process-backend service and its one warm pool, toggling the
resilience knobs between runs — supervised (the default: breaker +
retry present but idle) vs stripped (both nulled out) — interleaved in
alternating order so thermal/frequency drift hits both sides equally,
and compares the median of paired per-round ratios (adjacent batches
see the same box-wide disturbances, which cancel in the ratio). A
single shared pool is the point: a two-service
comparison makes two worker sets contend for the same cores and the
scheduling jitter swamps the microseconds actually under test. The
idle path must stay under the regression gate (quiet-box
measurement ~1.00x; the gate is a tripwire sized for contended CI
boxes); both configurations must produce
bit-for-bit identical results, because idle supervision may never
change a plan.

When the baseline runs too fast to time reliably the ratio is reported
but not asserted, same policy as the other timing gates.
"""

from __future__ import annotations

import statistics
import time

from repro.bench.experiments import BENCH_CONFIG, make_service
from repro.plans.serialize import result_to_dict
from repro.workload import WorkloadGenerator

#: Query numbers feeding the request stream (3-objective RTA cells).
WORKLOAD_QUERIES = (5, 8)

#: Requests per query number; total batch = len(queries) * this.
PER_QUERY = 12

#: Interleaved rounds; the median of 5 paired ratios shrugs off two
#: disturbed rounds.
ROUNDS = 5

#: Below this baseline duration the ratio is noise, not signal.
MIN_MEASURABLE_SECONDS = 0.2

#: Regression tripwire, not the expected value: quiet-box runs
#: measure ~1.00x, but on a contended CI box the paired-median ratio
#: wobbles a few percent, and a real regression (a sleep or poll on
#: the dispatch path) costs far more than 10%.
MAX_OVERHEAD_RATIO = 1.10


def signature(result) -> dict:
    """The deterministic part of a result (plan, costs, frontier)."""
    payload = result_to_dict(result)
    del payload["metrics"]  # wall times legitimately differ per run
    return payload


def test_idle_supervision_overhead(parallel_workers, report):
    generator = WorkloadGenerator(
        make_service().schema, config=BENCH_CONFIG, seed=42
    )
    requests = [
        case.to_request(algorithm="rta", alpha=2.0)
        for query_number in WORKLOAD_QUERIES
        for case in generator.weighted_cases(
            query_number, num_objectives=3, count=PER_QUERY
        )
    ]

    service = make_service(backend="processes", workers=parallel_workers)
    breaker, retry_policy = service.breaker, service.retry_policy
    assert breaker is not None and retry_policy is not None
    assert service.chaos is None, "overhead guard must run without chaos"
    assert service.heartbeat_s is None

    # The process backend always builds a breaker (there is no public
    # "unsupervised" configuration — that is the point of the ladder),
    # so the stripped baseline is the same service with the knobs
    # removed between runs: the dispatch loop then runs decision-free,
    # the closest living relative of the pre-supervision code path.
    def timed_batch(supervise: bool):
        service.breaker = breaker if supervise else None
        service.retry_policy = retry_policy if supervise else None
        start = time.perf_counter()
        results = [service.submit(r) for r in requests]
        return time.perf_counter() - start, results

    with service:
        service.worker_pool().warm_up()  # exclude spawn cost

        base_times: list[float] = []
        sup_times: list[float] = []
        for round_number in range(ROUNDS):
            # Alternate the order each round so slowdowns the first
            # batch triggers (turbo decay, background tasks) do not
            # systematically land on one side.
            if round_number % 2:
                elapsed, supervised_results = timed_batch(supervise=True)
                sup_times.append(elapsed)
                elapsed, baseline_results = timed_batch(supervise=False)
                base_times.append(elapsed)
            else:
                elapsed, baseline_results = timed_batch(supervise=False)
                base_times.append(elapsed)
                elapsed, supervised_results = timed_batch(supervise=True)
                sup_times.append(elapsed)

        breaker_state = breaker.snapshot()
        best_baseline = min(base_times)
        best_supervised = min(sup_times)

    # Idle supervision changes nothing: same plans, same frontiers, no
    # retries, no degradation, and the breaker never left "closed".
    assert [signature(r) for r in supervised_results] == [
        signature(r) for r in baseline_results
    ]
    assert not any(r.degraded for r in supervised_results)
    assert service.metrics.retries == 0
    assert service.metrics.worker_failures == 0
    assert breaker_state["state"] == "closed"

    # Paired per-round ratios + median: adjacent batches see the same
    # box-wide disturbances, which then cancel in the ratio; the median
    # drops the rounds where a disturbance split a pair.
    ratio = statistics.median(
        sup / base for sup, base in zip(sup_times, base_times)
    )
    per_request_us = (
        (best_supervised - best_baseline) / len(requests) * 1e6
    )
    lines = [
        "resilience overhead -- idle supervision vs stripped dispatch",
        f"  {len(requests)} requests x {ROUNDS} rounds, "
        f"workers={parallel_workers}",
        f"  stripped   {best_baseline * 1000:8.1f} ms",
        f"  supervised {best_supervised * 1000:8.1f} ms",
        f"  median ratio {ratio:5.3f}  (gate < {MAX_OVERHEAD_RATIO})   "
        f"best-of-N delta {per_request_us:+.1f} us/request",
    ]
    report("\n".join(lines))

    if best_baseline >= MIN_MEASURABLE_SECONDS:
        assert ratio < MAX_OVERHEAD_RATIO, (
            f"idle resilience machinery costs {ratio:.3f}x the stripped "
            f"dispatch path (gate: < {MAX_OVERHEAD_RATIO}x)"
        )
    # Sub-measurable runs: reported, not asserted (timing noise wins).
