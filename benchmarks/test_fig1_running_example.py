"""Figures 1, 2, 6, 8 — the running example (formal-model illustrations).

These figures are didactic rather than experimental; the benchmark
recomputes every quantity they display (optima, frontier, pruning
classification, bounded-approximation pathology) and reports them.
"""

from repro.bench.running_example import (
    RUNNING_EXAMPLE_BOUNDS,
    RUNNING_EXAMPLE_VECTORS,
    RUNNING_EXAMPLE_WEIGHTS,
    bounded_optimum,
    classify_vectors,
    figure8_pathology,
    pareto_frontier,
    weighted_optimum,
)


def _figure1_and_2():
    return {
        "weighted_optimum": weighted_optimum(),
        "bounded_optimum": bounded_optimum(),
        "frontier": pareto_frontier(),
    }


def test_fig1_fig2_optima_and_frontier(benchmark, report):
    data = benchmark.pedantic(_figure1_and_2, rounds=3, iterations=1)
    lines = [
        "Figures 1 & 2 — running example (buffer space, time)",
        f"vectors:           {list(RUNNING_EXAMPLE_VECTORS)}",
        f"weights:           {RUNNING_EXAMPLE_WEIGHTS}",
        f"bounds:            {RUNNING_EXAMPLE_BOUNDS}",
        f"[1a] weighted opt: {data['weighted_optimum']}",
        f"[1b] bounded opt:  {data['bounded_optimum']}",
        f"[2]  frontier:     {data['frontier']}",
    ]
    report("\n".join(lines))
    assert data["weighted_optimum"] != data["bounded_optimum"]
    assert data["weighted_optimum"] in data["frontier"]


def test_fig6_approximate_dominance_classification(benchmark, report):
    classes = benchmark.pedantic(
        lambda: classify_vectors(alpha=1.5), rounds=3, iterations=1
    )
    lines = ["Figure 6 — dominated vs approximately dominated (alpha=1.5)"]
    for key, vectors in classes.items():
        lines.append(f"{key:25s} {vectors}")
    report("\n".join(lines))
    # The approximately dominated area strictly extends the dominated one.
    assert classes["approximately_dominated"]
    assert classes["dominated"]


def test_fig8_bounded_pathology(benchmark, report):
    pathology = benchmark.pedantic(figure8_pathology, rounds=3, iterations=1)
    lines = ["Figure 8 — approximate Pareto set may miss bounded optimum"]
    for key, value in pathology.items():
        lines.append(f"{key:28s} {value}")
    report("\n".join(lines))
    assert pathology["kept_approx_dominates"]
    assert pathology["discarded_respects_bounds"]
    assert not pathology["kept_respects_bounds"]
