"""Ablation — RTA internal precision (Theorem 3's choice).

The RTA prunes with ``alpha_U ** (1/|Q|)`` so that per-level
approximation factors compound to exactly ``alpha_U`` over the |Q|
levels of bottom-up construction. Pruning directly with ``alpha_U``
("direct") discards more plans and is faster, but its compounded factor
is ``alpha_U ** |Q|`` — the guarantee degrades with query size.
"""

from collections import defaultdict

from repro.bench.ablations import internal_precision_ablation
from repro.bench.reporting import format_table

ALPHA_U = 2.0


def test_ablation_internal_precision(benchmark, report):
    rows = benchmark.pedantic(
        lambda: internal_precision_ablation(alpha_u=ALPHA_U),
        rounds=1, iterations=1,
    )
    by_variant: dict[str, list] = defaultdict(list)
    for row in rows:
        by_variant[row.variant].append(row)

    def mean(values):
        values = list(values)
        return sum(values) / len(values)

    table_rows = [
        (
            variant,
            [
                max(r.approximation_factor for r in variant_rows),
                mean(r.plans_considered for r in variant_rows),
                mean(r.time_ms for r in variant_rows),
            ],
        )
        for variant, variant_rows in by_variant.items()
    ]
    report(format_table(
        f"Ablation — RTA internal precision (alpha_U = {ALPHA_U})",
        ["worst approx factor", "avg plans considered", "avg time (ms)"],
        table_rows,
    ))

    # The nth-root precision keeps the alpha_U guarantee.
    assert max(
        r.approximation_factor for r in by_variant["nth_root"]
    ) <= ALPHA_U * (1 + 1e-9)

    # Direct pruning does less work ...
    assert mean(
        r.plans_considered for r in by_variant["direct"]
    ) <= mean(r.plans_considered for r in by_variant["nth_root"])

    # ... and its only certificate is the much weaker alpha_U^n; the
    # observed factors stay within that loose envelope.
    for row in by_variant["direct"]:
        assert row.approximation_factor <= ALPHA_U ** 8
